//! The Ruler: "a component that enables assessment of a collection of
//! configurable queries and execute an action based on the outcome, thus
//! aids in setting alerting rules along with configuring routing of the
//! resulting alerts from a Prometheus Alertmanager" (§III-A).
//!
//! Rules share the Prometheus alerting-rule shape: an expression, a `for:`
//! hold duration, extra labels, and annotations. Each evaluation ticks the
//! pending → firing state machine per result series; transitions out emit
//! resolved notifications.

use crate::LokiCluster;
use omni_logql::{parse_expr, pipeline::render_template, Expr, MetricQuery, ParseError};
use omni_model::{LabelSet, Timestamp};
use std::collections::HashMap;

/// Lifecycle state of one alert series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition true, `for:` hold not yet satisfied.
    Pending,
    /// Condition held long enough; the alert is active.
    Firing,
    /// Condition stopped being true; terminal notification.
    Resolved,
}

impl AlertState {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One alerting rule (Figure 8's shape).
#[derive(Debug, Clone)]
pub struct AlertingRule {
    /// Alert name (`alert:` in the YAML).
    pub name: String,
    /// LogQL expression; must be a metric query.
    pub expr: String,
    /// Hold duration before firing (`for:`). The paper: "if the return
    /// value is greater than zero and it lasts more than one minutes, an
    /// alert will be generated".
    pub for_ns: i64,
    /// Extra labels attached to the alert (severity, category, ...).
    pub labels: LabelSet,
    /// Annotations; values are `{{.label}}` templates.
    pub annotations: Vec<(String, String)>,
}

impl AlertingRule {
    /// Build the Figure 8 leak-detection rule.
    pub fn paper_leak_rule() -> Self {
        Self {
            name: "PerlmutterCabinetLeak".into(),
            expr: r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId, Message) > 0"#.into(),
            for_ns: 60 * 1_000_000_000,
            labels: LabelSet::from_pairs([("severity", "critical"), ("category", "facility")]),
            annotations: vec![
                ("summary".into(), "Cabinet leak detected at {{.Context}}".into()),
                ("description".into(), "{{.Message}}".into()),
            ],
        }
    }

    /// GPFS server-health rule — the §V future-work scenario, following
    /// the same pattern-extraction shape as the switch rule.
    pub fn gpfs_server_rule() -> Self {
        Self {
            name: "GpfsServerUnhealthy".into(),
            expr: r#"sum(count_over_time({app="gpfs_monitor"} |= "gpfs_server_state" | pattern "[<severity>] problem:<problem>, fs:<fs>, server:<server>, state:<state>" | state != "HEALTHY" [5m])) by (severity, fs, server, state) > 0"#.into(),
            for_ns: 60 * 1_000_000_000,
            labels: LabelSet::from_pairs([("severity", "critical"), ("category", "storage")]),
            annotations: vec![
                ("summary".into(), "GPFS server {{.server}} on {{.fs}} is {{.state}}".into()),
                ("description".into(), "filesystem {{.fs}} server {{.server}} state {{.state}}".into()),
            ],
        }
    }

    /// Build the Figure 8 switch-offline rule.
    pub fn paper_switch_rule() -> Self {
        Self {
            name: "PerlmutterSwitchOffline".into(),
            expr: r#"sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (severity, problem, xname, state) > 0"#.into(),
            for_ns: 60 * 1_000_000_000,
            labels: LabelSet::from_pairs([("severity", "critical"), ("category", "fabric")]),
            annotations: vec![
                ("summary".into(), "Switch {{.xname}} is {{.state}}".into()),
                ("description".into(), "problem={{.problem}} on {{.xname}}".into()),
            ],
        }
    }
}

/// A rule group evaluated on one interval (the Prometheus rule-file
/// `groups:` unit).
#[derive(Debug, Clone)]
pub struct RuleGroup {
    /// Group name.
    pub name: String,
    /// Evaluation interval.
    pub interval_ns: i64,
    /// The rules.
    pub rules: Vec<AlertingRule>,
}

/// A notification the Ruler hands to Alertmanager.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleNotification {
    /// `alertname` + rule labels + series labels.
    pub labels: LabelSet,
    /// Rendered annotations.
    pub annotations: Vec<(String, String)>,
    /// pending/firing/resolved.
    pub state: AlertState,
    /// When the series first became active.
    pub active_at: Timestamp,
    /// The expression's value at evaluation.
    pub value: f64,
}

#[derive(Debug, Clone)]
struct ActiveAlert {
    active_at: Timestamp,
    firing: bool,
    last_value: f64,
}

/// The Ruler: evaluates rule groups against a cluster and reports alert
/// transitions.
pub struct Ruler {
    cluster: LokiCluster,
    groups: Vec<(RuleGroup, Vec<MetricQuery>)>,
    /// (group, rule index, series labels) → state.
    active: HashMap<(usize, usize, LabelSet), ActiveAlert>,
    last_eval: HashMap<usize, Timestamp>,
}

impl Ruler {
    /// Attach a ruler to a cluster.
    pub fn new(cluster: LokiCluster) -> Self {
        Self { cluster, groups: Vec::new(), active: HashMap::new(), last_eval: HashMap::new() }
    }

    /// Add a rule group, parsing every expression up front.
    pub fn add_group(&mut self, group: RuleGroup) -> Result<(), ParseError> {
        let mut parsed = Vec::with_capacity(group.rules.len());
        for rule in &group.rules {
            match parse_expr(&rule.expr)? {
                Expr::Metric(m) => parsed.push(m),
                Expr::Log(_) => {
                    return Err(ParseError {
                        message: format!("rule {:?} must be a metric query", rule.name),
                    })
                }
            }
        }
        self.groups.push((group, parsed));
        Ok(())
    }

    /// Evaluate every group whose interval elapsed at `now`; returns the
    /// notifications produced by this pass (pending alerts are tracked but
    /// not notified, matching Prometheus).
    pub fn evaluate(&mut self, now: Timestamp) -> Vec<RuleNotification> {
        let mut out = Vec::new();
        for gi in 0..self.groups.len() {
            let due = match self.last_eval.get(&gi) {
                Some(&last) => now.saturating_sub(last) >= self.groups[gi].0.interval_ns,
                None => true,
            };
            if !due {
                continue;
            }
            self.last_eval.insert(gi, now);
            out.extend(self.evaluate_group(gi, now));
        }
        out
    }

    fn evaluate_group(&mut self, gi: usize, now: Timestamp) -> Vec<RuleNotification> {
        let mut out = Vec::new();
        let (group, parsed) = &self.groups[gi];
        let group_rules: Vec<AlertingRule> = group.rules.clone();
        let queries: Vec<MetricQuery> = parsed.clone();
        for (ri, (rule, query)) in group_rules.iter().zip(queries.iter()).enumerate() {
            // Rule queries go through the frontend so per-query limits
            // apply to the ruler too; a rejected query contributes no
            // series this cycle (the frontend counts the rejection).
            let vector =
                match self.cluster.frontend().run_instant_query(&self.cluster.shards(), query, now)
                {
                    Ok((v, _)) => v,
                    Err(_) => Vec::new(),
                };
            let mut seen: Vec<LabelSet> = Vec::new();
            for (series_labels, value) in vector {
                let key = (gi, ri, series_labels.clone());
                seen.push(series_labels.clone());
                let entry = self.active.entry(key).or_insert(ActiveAlert {
                    active_at: now,
                    firing: false,
                    last_value: value,
                });
                entry.last_value = value;
                if !entry.firing && now.saturating_sub(entry.active_at) >= rule.for_ns {
                    entry.firing = true;
                }
                let snapshot = entry.clone();
                if snapshot.firing {
                    out.push(self.notification(
                        rule,
                        &series_labels,
                        &snapshot,
                        AlertState::Firing,
                    ));
                }
            }
            // Series that disappeared: resolve them.
            let stale: Vec<(usize, usize, LabelSet)> = self
                .active
                .keys()
                .filter(|(g, r, l)| *g == gi && *r == ri && !seen.contains(l))
                .cloned()
                .collect();
            for key in stale {
                let Some(entry) = self.active.remove(&key) else { continue };
                if entry.firing {
                    out.push(self.notification(rule, &key.2, &entry, AlertState::Resolved));
                }
            }
        }
        out
    }

    fn notification(
        &self,
        rule: &AlertingRule,
        series_labels: &LabelSet,
        entry: &ActiveAlert,
        state: AlertState,
    ) -> RuleNotification {
        let mut labels = series_labels.merged_with(&rule.labels);
        labels.insert("alertname", rule.name.as_str());
        let annotations = rule
            .annotations
            .iter()
            .map(|(k, tpl)| (k.clone(), render_template(tpl, &labels)))
            .collect();
        RuleNotification {
            labels,
            annotations,
            state,
            active_at: entry.active_at,
            value: entry.last_value,
        }
    }

    /// Number of currently active (pending or firing) series.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Limits, LokiCluster};
    use omni_model::{labels, SimClock, NANOS_PER_SEC};

    fn minute() -> i64 {
        60 * NANOS_PER_SEC
    }

    fn setup() -> (LokiCluster, Ruler) {
        let cluster = LokiCluster::new(2, Limits::default(), SimClock::starting_at(0));
        let ruler = Ruler::new(cluster.clone());
        (cluster, ruler)
    }

    fn switch_group() -> RuleGroup {
        RuleGroup {
            name: "fabric".into(),
            interval_ns: minute(),
            rules: vec![AlertingRule::paper_switch_rule()],
        }
    }

    #[test]
    fn rule_fires_after_for_hold() {
        let (cluster, mut ruler) = setup();
        ruler.add_group(switch_group()).unwrap();
        let t0 = 10 * minute();
        cluster
            .push(
                labels!("app" => "fabric_manager_monitor", "cluster" => "perlmutter"),
                t0,
                "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN",
            )
            .unwrap();
        // First evaluation right after the event: pending, no notification.
        assert!(ruler.evaluate(t0 + NANOS_PER_SEC).is_empty());
        assert_eq!(ruler.active_count(), 1);
        // One minute later: firing.
        let notifs = ruler.evaluate(t0 + minute() + 2 * NANOS_PER_SEC);
        assert_eq!(notifs.len(), 1);
        let n = &notifs[0];
        assert_eq!(n.state, AlertState::Firing);
        assert_eq!(n.labels.get("alertname"), Some("PerlmutterSwitchOffline"));
        assert_eq!(n.labels.get("xname"), Some("x1002c1r7b0"));
        assert_eq!(n.labels.get("state"), Some("UNKNOWN"));
        assert_eq!(n.value, 1.0);
        let summary = n.annotations.iter().find(|(k, _)| k == "summary").unwrap();
        assert_eq!(summary.1, "Switch x1002c1r7b0 is UNKNOWN");
    }

    #[test]
    fn rule_resolves_when_window_empties() {
        let (cluster, mut ruler) = setup();
        ruler.add_group(switch_group()).unwrap();
        let t0 = 10 * minute();
        cluster
            .push(
                labels!("app" => "fabric_manager_monitor"),
                t0,
                "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN",
            )
            .unwrap();
        ruler.evaluate(t0 + NANOS_PER_SEC);
        let firing = ruler.evaluate(t0 + 2 * minute());
        assert!(firing.iter().any(|n| n.state == AlertState::Firing));
        // After the 5m window slides past the event, the series vanishes
        // and a resolved notification goes out.
        let resolved = ruler.evaluate(t0 + 10 * minute());
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
        assert_eq!(ruler.active_count(), 0);
    }

    #[test]
    fn interval_gates_evaluation() {
        let (cluster, mut ruler) = setup();
        ruler.add_group(switch_group()).unwrap();
        let t0 = 10 * minute();
        cluster
            .push(
                labels!("app" => "fabric_manager_monitor"),
                t0,
                "[critical] problem:fm_switch_offline, xname:x1, state:OFFLINE",
            )
            .unwrap();
        ruler.evaluate(t0);
        // 10 seconds later the group is not due yet; active set unchanged.
        let before = ruler.active_count();
        ruler.evaluate(t0 + 10 * NANOS_PER_SEC);
        assert_eq!(ruler.active_count(), before);
    }

    #[test]
    fn log_query_rules_rejected() {
        let (_, mut ruler) = setup();
        let bad = RuleGroup {
            name: "bad".into(),
            interval_ns: minute(),
            rules: vec![AlertingRule {
                name: "NotAMetric".into(),
                expr: r#"{app="x"}"#.into(),
                for_ns: 0,
                labels: LabelSet::new(),
                annotations: vec![],
            }],
        };
        assert!(ruler.add_group(bad).is_err());
    }

    #[test]
    fn zero_for_fires_immediately() {
        let (cluster, mut ruler) = setup();
        let mut rule = AlertingRule::paper_switch_rule();
        rule.for_ns = 0;
        ruler
            .add_group(RuleGroup { name: "g".into(), interval_ns: minute(), rules: vec![rule] })
            .unwrap();
        let t0 = 10 * minute();
        cluster
            .push(
                labels!("app" => "fabric_manager_monitor"),
                t0,
                "[critical] problem:fm_switch_offline, xname:x2, state:OFFLINE",
            )
            .unwrap();
        let notifs = ruler.evaluate(t0 + 1);
        assert_eq!(notifs.len(), 1);
        assert_eq!(notifs[0].state, AlertState::Firing);
    }

    #[test]
    fn two_switches_fire_as_separate_series() {
        let (cluster, mut ruler) = setup();
        let mut rule = AlertingRule::paper_switch_rule();
        rule.for_ns = 0;
        ruler
            .add_group(RuleGroup { name: "g".into(), interval_ns: minute(), rules: vec![rule] })
            .unwrap();
        let t0 = 10 * minute();
        for xname in ["x1000c1r1b0", "x1001c2r3b0"] {
            cluster
                .push(
                    labels!("app" => "fabric_manager_monitor"),
                    t0,
                    format!("[critical] problem:fm_switch_offline, xname:{xname}, state:OFFLINE"),
                )
                .unwrap();
        }
        let notifs = ruler.evaluate(t0 + 1);
        assert_eq!(notifs.len(), 2);
        let mut xnames: Vec<&str> = notifs.iter().map(|n| n.labels.get("xname").unwrap()).collect();
        xnames.sort();
        assert_eq!(xnames, vec!["x1000c1r1b0", "x1001c2r3b0"]);
    }
}

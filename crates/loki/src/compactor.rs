//! The compactor: Loki's background housekeeping job, reproduced on the
//! virtual clock.
//!
//! Real Loki runs a single compactor against the shared object store. On
//! each interval it (a) merges the many small per-stream chunks the
//! ingesters flushed into few large objects, (b) deduplicates the
//! replicated/replayed chunks that land twice, and (c) executes
//! per-tenant retention as deletes against storage. This module does the
//! same over the [`ChunkStore`]'s two tiers:
//!
//! * **merge** — sealed chunks of one stream whose newest entry is older
//!   than `compact_after_ns` are decoded, concatenated in key order
//!   (which *is* time order under the offset-binary key encoding),
//!   stably re-sorted by timestamp, and re-cut into objects of
//!   `compacted_target_bytes`;
//! * **dedup** — byte-identical same-span source chunks (the artifact a
//!   WAL replay leaves when a crash lands between `persist` and the
//!   checkpoint) collapse to one copy. Because dedup changes query
//!   results, the run reports the affected window so the caller can
//!   invalidate the frontend's result cache over exactly that span;
//! * **demote** — compacted objects are written to the simulated cold
//!   tier ([`crate::chunkstore::ColdTier`], with its object-store
//!   latency/failure model) and the merged hot sources are deleted;
//! * **retention** — each series' horizon (per-tenant, resolved from the
//!   stream labels by the caller) is applied as key-span deletes across
//!   both tiers, replacing the old eager per-shard store sweeps.
//!
//! Dedup is deliberately *chunk*-level, not entry-level: two entries with
//! the same timestamp and line are legitimate data (syslog bursts repeat
//! verbatim), and collapsing them would make the compacted tier disagree
//! with the head/sealed tiers. Only byte-identical whole chunks — which
//! can only be the same flush persisted twice — are dropped.

use crate::chunk::SealedChunk;
use crate::chunkstore::{object_to_chunk, ChunkStore, ObjectStore};
use omni_model::{LabelSet, LogEntry, Timestamp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What one compaction run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Streams whose hot chunks were examined.
    pub streams_examined: usize,
    /// Source hot chunks merged into compacted objects.
    pub chunks_merged: usize,
    /// Compacted objects written to the cold tier.
    pub objects_written: usize,
    /// Byte-identical duplicate chunks dropped during the merge.
    pub duplicates_dropped: usize,
    /// Objects deleted (both tiers) by per-tenant retention.
    pub retention_deleted: usize,
    /// Stored bytes removed from the hot tier by this run.
    pub hot_bytes_removed: usize,
    /// Stored bytes added to the cold tier by this run.
    pub cold_bytes_added: usize,
    /// Time window whose query results changed because duplicates were
    /// dropped — the caller must invalidate cached results over it.
    pub dedup_window: Option<(Timestamp, Timestamp)>,
}

#[derive(Default)]
struct CompactorTotals {
    runs: AtomicU64,
    chunks_merged: AtomicU64,
    objects_written: AtomicU64,
    duplicates_dropped: AtomicU64,
    retention_deleted: AtomicU64,
}

/// Lifetime counters across every run (feeds `omni_compactor_*`
/// self-telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactorStats {
    /// Completed compaction runs.
    pub runs: u64,
    /// Source hot chunks merged into compacted objects.
    pub chunks_merged: u64,
    /// Compacted objects written to the cold tier.
    pub objects_written: u64,
    /// Byte-identical duplicate chunks dropped.
    pub duplicates_dropped: u64,
    /// Objects deleted by retention.
    pub retention_deleted: u64,
}

/// The background compaction job. Cheap to clone; clones share counters
/// and operate on the same (shared) chunk store.
#[derive(Clone)]
pub struct Compactor {
    store: ChunkStore,
    /// Only chunks whose `max_ts` is at least this far behind `now`
    /// are merged.
    compact_after_ns: i64,
    /// Target uncompressed bytes of one compacted object.
    target_bytes: usize,
    totals: Arc<CompactorTotals>,
}

impl Compactor {
    /// A compactor over `store`.
    pub fn new(store: ChunkStore, compact_after_ns: i64, target_bytes: usize) -> Self {
        Self {
            store,
            compact_after_ns,
            target_bytes: target_bytes.max(1),
            totals: Arc::new(CompactorTotals::default()),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CompactorStats {
        CompactorStats {
            runs: self.totals.runs.load(Ordering::Relaxed),
            chunks_merged: self.totals.chunks_merged.load(Ordering::Relaxed),
            objects_written: self.totals.objects_written.load(Ordering::Relaxed),
            duplicates_dropped: self.totals.duplicates_dropped.load(Ordering::Relaxed),
            retention_deleted: self.totals.retention_deleted.load(Ordering::Relaxed),
        }
    }

    /// Execute per-series retention as storage deletes: every chunk of
    /// every series (both tiers) entirely older than that stream's
    /// horizon goes. `retention_of(labels)` names the horizon — the
    /// per-tenant resolution the caller builds from its tenant registry.
    /// Returns objects deleted.
    pub fn apply_retention(
        &self,
        now: Timestamp,
        retention_of: &(dyn Fn(&LabelSet) -> i64 + Sync),
    ) -> usize {
        let mut deleted = 0;
        for (fp, labels) in self.store.series() {
            let horizon = now.saturating_sub(retention_of(&labels));
            deleted += self.store.delete_before(fp, horizon);
        }
        self.totals.retention_deleted.fetch_add(deleted as u64, Ordering::Relaxed);
        deleted
    }

    /// One full compaction run at virtual time `now`: retention deletes
    /// first (no point merging data that is about to expire), then
    /// merge + dedup + demote per series.
    pub fn run(
        &self,
        now: Timestamp,
        retention_of: &(dyn Fn(&LabelSet) -> i64 + Sync),
    ) -> CompactionReport {
        let mut report = CompactionReport {
            retention_deleted: self.apply_retention(now, retention_of),
            ..Default::default()
        };
        let cutoff = now.saturating_sub(self.compact_after_ns);

        for (fp, _labels) in self.store.series() {
            let eligible: Vec<(String, Timestamp, Timestamp)> = self
                .store
                .hot_chunk_refs(fp)
                .into_iter()
                .filter(|(_, _, max)| *max < cutoff)
                .collect();
            if eligible.len() < 2 {
                // Nothing to merge; a lone cold chunk stays hot rather
                // than paying a rewrite for zero consolidation.
                continue;
            }
            report.streams_examined += 1;

            // Decode sources in key (= time) order, dropping
            // byte-identical same-span duplicates.
            let mut seen: HashMap<(Timestamp, Timestamp), Vec<bytes::Bytes>> = HashMap::new();
            let mut entries: Vec<LogEntry> = Vec::new();
            let mut source_keys: Vec<String> = Vec::new();
            let mut merged_here = 0usize;
            for (key, min, max) in &eligible {
                let Some(data) = self.store.objects().get(key) else { continue };
                let span_seen = seen.entry((*min, *max)).or_default();
                if span_seen.contains(&data) {
                    report.duplicates_dropped += 1;
                    report.dedup_window = Some(match report.dedup_window {
                        Some((lo, hi)) => (lo.min(*min), hi.max(*max)),
                        None => (*min, *max),
                    });
                    report.hot_bytes_removed += data.len();
                    source_keys.push(key.clone());
                    continue;
                }
                match object_to_chunk(&data) {
                    Ok(chunk) => {
                        entries.extend(chunk.decode().unwrap_or_default());
                        report.hot_bytes_removed += data.len();
                        span_seen.push(data);
                        source_keys.push(key.clone());
                        merged_here += 1;
                    }
                    Err(_) => {
                        // Leave a corrupt source in place rather than
                        // destroy the only copy.
                    }
                }
            }
            if merged_here == 0 {
                continue;
            }
            report.chunks_merged += merged_here;

            // Key order already gives time order across chunks; the
            // stable sort fixes interleaved spans while preserving the
            // persist order of equal-timestamp entries — which is what
            // keeps compacted query results identical to sealed ones.
            entries.sort_by_key(|e| e.ts);

            // Re-cut into large objects and demote to the cold tier.
            let mut batch: Vec<LogEntry> = Vec::new();
            let mut batch_bytes = 0usize;
            let flush = |batch: &mut Vec<LogEntry>, report: &mut CompactionReport| {
                if batch.is_empty() {
                    return;
                }
                let chunk = SealedChunk::from_entries(batch);
                report.cold_bytes_added += chunk.compressed_size();
                self.store.put_compacted(fp, &chunk);
                report.objects_written += 1;
                batch.clear();
            };
            for e in entries {
                batch_bytes += e.line.len();
                batch.push(e);
                if batch_bytes >= self.target_bytes {
                    flush(&mut batch, &mut report);
                    batch_bytes = 0;
                }
            }
            flush(&mut batch, &mut report);

            // Only now that the compacted copies exist do the sources go.
            for key in source_keys {
                self.store.objects().delete(&key);
            }
        }

        self.totals.runs.fetch_add(1, Ordering::Relaxed);
        self.totals.chunks_merged.fetch_add(report.chunks_merged as u64, Ordering::Relaxed);
        self.totals.objects_written.fetch_add(report.objects_written as u64, Ordering::Relaxed);
        self.totals
            .duplicates_dropped
            .fetch_add(report.duplicates_dropped as u64, Ordering::Relaxed);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    fn chunk(lines: usize, base_ts: Timestamp) -> SealedChunk {
        let entries: Vec<LogEntry> =
            (0..lines).map(|i| LogEntry::new(base_ts + i as i64, format!("line {i}"))).collect();
        SealedChunk::from_entries(&entries)
    }

    fn store_with_stream(fp: u64, chunks: usize) -> ChunkStore {
        let store = ChunkStore::new();
        store.register_series(fp, &labels!("app" => "x"));
        for i in 0..chunks {
            store.persist(fp, &chunk(10, i as i64 * 1_000));
        }
        store
    }

    #[test]
    fn merges_small_chunks_into_cold_objects() {
        let store = store_with_stream(1, 8);
        let compactor = Compactor::new(store.clone(), 0, usize::MAX);
        let before: Vec<LogEntry> =
            store.fetch(1, i64::MIN, i64::MAX).iter().flat_map(|c| c.decode().unwrap()).collect();
        let report = compactor.run(1_000_000, &|_| i64::MAX);
        assert_eq!(report.chunks_merged, 8);
        assert_eq!(report.objects_written, 1, "everything fits one compacted object");
        assert_eq!(store.objects().list("chunks/").len(), 0, "hot sources deleted");
        assert_eq!(store.cold().object_count(), 1);
        let after: Vec<LogEntry> =
            store.fetch(1, i64::MIN, i64::MAX).iter().flat_map(|c| c.decode().unwrap()).collect();
        assert_eq!(before.len(), after.len());
        assert_eq!(before, after, "compaction must not change query results");
        assert_eq!(compactor.stats().runs, 1);
    }

    #[test]
    fn respects_compact_after_age_gate() {
        let store = store_with_stream(1, 4); // spans up to ts 3009
        let compactor = Compactor::new(store.clone(), 10_000, usize::MAX);
        // now=5_000 → cutoff -5_000: nothing old enough.
        let report = compactor.run(5_000, &|_| i64::MAX);
        assert_eq!(report.chunks_merged, 0);
        assert_eq!(store.cold().object_count(), 0);
        // now=12_500 → cutoff 2_500: the first three chunks qualify.
        let report = compactor.run(12_500, &|_| i64::MAX);
        assert_eq!(report.chunks_merged, 3);
        assert_eq!(store.objects().list("chunks/").len(), 1);
    }

    #[test]
    fn cuts_at_target_bytes() {
        let store = store_with_stream(1, 6);
        // ~70 uncompressed bytes per source chunk; a 150-byte target
        // forces multiple compacted objects.
        let compactor = Compactor::new(store.clone(), 0, 150);
        let report = compactor.run(1_000_000, &|_| i64::MAX);
        assert!(report.objects_written >= 2, "got {}", report.objects_written);
        let total: usize = store.fetch(1, i64::MIN, i64::MAX).iter().map(|c| c.count).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn dedups_byte_identical_replay_chunks_only() {
        let store = ChunkStore::new();
        store.register_series(1, &labels!("app" => "x"));
        let replayed = chunk(10, 0);
        store.persist(1, &replayed);
        store.persist(1, &replayed); // the WAL-replay double persist
                                     // Same span, different payload: two distinct bursts, both kept.
        let burst_a = SealedChunk::from_entries(&[LogEntry::new(5_000, "burst A")]);
        let burst_b = SealedChunk::from_entries(&[LogEntry::new(5_000, "burst B")]);
        store.persist(1, &burst_a);
        store.persist(1, &burst_b);
        let compactor = Compactor::new(store.clone(), 0, usize::MAX);
        let report = compactor.run(1_000_000, &|_| i64::MAX);
        assert_eq!(report.duplicates_dropped, 1, "only the replayed copy is a duplicate");
        assert_eq!(report.dedup_window, Some((0, 9)));
        let entries: Vec<LogEntry> =
            store.fetch(1, i64::MIN, i64::MAX).iter().flat_map(|c| c.decode().unwrap()).collect();
        assert_eq!(entries.len(), 12, "10 unique + both same-span bursts");
        assert_eq!(entries.iter().filter(|e| e.line.starts_with("burst")).count(), 2);
    }

    #[test]
    fn retention_deletes_across_both_tiers_per_stream() {
        let store = ChunkStore::new();
        store.register_series(1, &labels!("app" => "short", "__tenant__" => "t1"));
        store.register_series(2, &labels!("app" => "long", "__tenant__" => "t2"));
        store.persist(1, &chunk(10, 0));
        store.put_compacted(1, &chunk(10, 2_000));
        store.persist(2, &chunk(10, 0));
        let compactor = Compactor::new(store.clone(), i64::MAX, usize::MAX);
        // t1 keeps 1_000ns of data, t2 keeps everything.
        let resolve = |labels: &LabelSet| {
            if labels.get("__tenant__") == Some("t1") {
                1_000
            } else {
                i64::MAX
            }
        };
        let deleted = compactor.apply_retention(10_000, &resolve);
        assert_eq!(deleted, 2, "t1's hot and cold chunks both expire");
        assert!(store.fetch(1, i64::MIN, i64::MAX).is_empty());
        assert_eq!(store.fetch(2, i64::MIN, i64::MAX).len(), 1);
        assert_eq!(compactor.stats().retention_deleted, 2);
    }

    #[test]
    fn lone_chunks_are_left_alone() {
        let store = store_with_stream(1, 1);
        let compactor = Compactor::new(store.clone(), 0, usize::MAX);
        let report = compactor.run(1_000_000, &|_| i64::MAX);
        assert_eq!(report.chunks_merged, 0);
        assert_eq!(store.objects().list("chunks/").len(), 1);
        assert_eq!(store.cold().object_count(), 0);
    }
}

//! Weighted fair scheduling of query splits across tenants.
//!
//! The query frontend fans each query out into per-split scans on a
//! scoped thread pool. Without scheduling, a noisy tenant issuing
//! hundreds of wide queries monopolises that pool and every other
//! tenant's queries queue behind it. [`FairScheduler`] fixes that with
//! classic weighted fair queueing over virtual time: each tenant's next
//! split is stamped with a virtual finish tag `start + SCALE / weight`
//! (where `start` is the later of the tenant's last tag and the global
//! virtual time), and grants always go to the smallest tag. A tenant
//! with a deep backlog accumulates far-future tags, so a freshly
//! arriving tenant — whose tag starts at the global virtual time — jumps
//! ahead of the backlog and waits only O(pool) grants, never O(backlog).
//!
//! Waits are measured two ways, both deterministic under the virtual
//! clock: in *grant rounds* (how many other splits were granted between
//! enqueue and grant — the quantity the chaos drill bounds) and in
//! **virtual nanoseconds** on the WFQ virtual-time axis (how far the
//! global virtual time advanced while the ticket queued). The wall clock
//! is useless here — the SimClock is frozen for the whole of a query —
//! so the virtual-time axis is the only honest measure of "how long did
//! this split sit behind other tenants' work".

use omni_model::TenantId;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Virtual-time cost scale: a weight-1 split advances its tenant's
/// virtual time by this much, a weight-2 split by half, and so on.
/// One unit is declared to be one *virtual nanosecond*, so a weight-1
/// split models ~1.05ms of scheduler work and a split queued behind a
/// 100-deep weight-1 backlog reports ~105ms of virtual queue wait.
const WEIGHT_SCALE: u64 = 1 << 20;

/// Cap on buffered per-grant wait samples between drains; beyond it new
/// samples are dropped (the peak map keeps tracking) so an undrained
/// scheduler cannot grow without bound.
const WAIT_BUFFER_CAP: usize = 1 << 16;

/// Max-wait (in grant rounds) observed per tenant, plus total grants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Total splits granted since construction.
    pub grants: u64,
    /// Peak grant-round wait per tenant, sorted by tenant id.
    pub max_wait_rounds: Vec<(TenantId, u64)>,
}

struct Ticket {
    tenant: TenantId,
    finish: u64,
    seq: u64,
    enqueue_round: u64,
    /// Global virtual time when the ticket entered the queue.
    enqueue_vtime: u64,
}

struct Inner {
    /// Last assigned virtual finish tag per tenant.
    vtime: HashMap<TenantId, u64>,
    /// Global virtual time: the largest finish tag ever granted.
    global: u64,
    /// Tickets waiting for a grant.
    queue: Vec<Ticket>,
    /// Splits currently executing.
    active: usize,
    /// Monotonic ticket number (FIFO tie-break).
    next_seq: u64,
    /// Grants handed out so far.
    rounds: u64,
    max_wait: HashMap<TenantId, u64>,
    /// Per-grant `(tenant, virtual-ns wait)` samples since the last
    /// [`FairScheduler::take_waits`] drain, capped at [`WAIT_BUFFER_CAP`].
    waits: Vec<(TenantId, u64)>,
}

/// A weighted-fair gate in front of the split-scan thread pool.
pub struct FairScheduler {
    pool: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl FairScheduler {
    /// A scheduler admitting at most `pool` concurrent splits.
    pub fn new(pool: usize) -> Self {
        Self {
            pool: pool.max(1),
            inner: Mutex::new(Inner {
                vtime: HashMap::new(),
                global: 0,
                queue: Vec::new(),
                active: 0,
                next_seq: 0,
                rounds: 0,
                max_wait: HashMap::new(),
                waits: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Concurrency bound.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Lock the shared state, recovering the guard from a poisoned lock
    /// (a panicking split must not wedge every other tenant's queries).
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Run `f` once the scheduler grants this tenant a slot. Blocks the
    /// calling thread until granted; fairness comes from grant order, not
    /// from preemption.
    pub fn run<T>(&self, tenant: &TenantId, weight: u32, f: impl FnOnce() -> T) -> T {
        self.run_timed(tenant, weight, f).0
    }

    /// [`FairScheduler::run`] that also returns how long this split
    /// queued, in virtual nanoseconds on the WFQ virtual-time axis.
    pub fn run_timed<T>(&self, tenant: &TenantId, weight: u32, f: impl FnOnce() -> T) -> (T, u64) {
        let my_seq = self.enqueue(tenant, weight);
        self.run_ticket(my_seq, f)
    }

    /// Reserve a queue ticket without blocking. Pairing this with
    /// [`FairScheduler::run_ticket`] lets a caller enqueue a whole batch
    /// of splits *before* any of them is granted: each ticket's measured
    /// queue wait then depends only on its position and weight on the
    /// virtual-time axis — not on how the executing threads happen to
    /// interleave — which is what keeps query reports deterministic.
    pub fn ticket(&self, tenant: &TenantId, weight: u32) -> u64 {
        self.enqueue(tenant, weight)
    }

    /// Block until a previously reserved ticket is granted, run `f`, and
    /// release the slot. Returns `f`'s result and the ticket's queue
    /// wait in virtual nanoseconds.
    pub fn run_ticket<T>(&self, ticket: u64, f: impl FnOnce() -> T) -> (T, u64) {
        let wait_vns = self.await_grant(ticket);
        let out = f();
        let mut g = self.lock();
        g.active -= 1;
        drop(g);
        self.cv.notify_all();
        (out, wait_vns)
    }

    fn enqueue(&self, tenant: &TenantId, weight: u32) -> u64 {
        let mut g = self.lock();
        let start = g.vtime.get(tenant).copied().unwrap_or(0).max(g.global);
        let cost = (WEIGHT_SCALE / u64::from(weight.max(1))).max(1);
        let finish = start.saturating_add(cost);
        g.vtime.insert(tenant.clone(), finish);
        let seq = g.next_seq;
        g.next_seq += 1;
        let enqueue_round = g.rounds;
        let enqueue_vtime = g.global;
        g.queue.push(Ticket { tenant: tenant.clone(), finish, seq, enqueue_round, enqueue_vtime });
        seq
    }

    fn await_grant(&self, my_seq: u64) -> u64 {
        let mut g = self.lock();
        loop {
            if g.active < self.pool {
                let best = g.queue.iter().map(|t| (t.finish, t.seq)).min();
                if let Some((_, best_seq)) = best {
                    if best_seq == my_seq {
                        let pos = g
                            .queue
                            .iter()
                            .position(|t| t.seq == my_seq)
                            .expect("own ticket present"); // lint:allow(no-unwrap)
                        let ticket = g.queue.swap_remove(pos);
                        let wait = g.rounds - ticket.enqueue_round;
                        // How far the global virtual time moved while the
                        // ticket sat in the queue — measured *before* this
                        // grant advances it.
                        let wait_vns = g.global.saturating_sub(ticket.enqueue_vtime);
                        let peak = g.max_wait.entry(ticket.tenant.clone()).or_insert(0);
                        *peak = (*peak).max(wait);
                        if g.waits.len() < WAIT_BUFFER_CAP {
                            g.waits.push((ticket.tenant.clone(), wait_vns));
                        }
                        g.rounds += 1;
                        g.global = g.global.max(ticket.finish);
                        g.active += 1;
                        drop(g);
                        // Another waiter may also be grantable now.
                        self.cv.notify_all();
                        return wait_vns;
                    }
                }
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Drain the per-grant `(tenant, virtual-ns wait)` samples collected
    /// since the last drain — the feed for the per-tenant queue-wait
    /// histogram in the stack's self-telemetry.
    pub fn take_waits(&self) -> Vec<(TenantId, u64)> {
        std::mem::take(&mut self.lock().waits)
    }

    /// Observed grants and per-tenant peak waits.
    pub fn stats(&self) -> SchedulerStats {
        let g = self.lock();
        let mut waits: Vec<(TenantId, u64)> =
            g.max_wait.iter().map(|(t, w)| (t.clone(), *w)).collect();
        waits.sort_by(|a, b| a.0.cmp(&b.0));
        SchedulerStats { grants: g.rounds, max_wait_rounds: waits }
    }

    /// Peak grant-round wait observed for one tenant (0 if never queued).
    pub fn max_wait_rounds(&self, tenant: &TenantId) -> u64 {
        self.lock().max_wait.get(tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_tenant_runs_everything() {
        let s = FairScheduler::new(2);
        let t = TenantId::new("a");
        let hits = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| s.run(&t, 1, || hits.fetch_add(1, Ordering::Relaxed)));
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert_eq!(s.stats().grants, 16);
    }

    #[test]
    fn late_arrival_jumps_a_deep_backlog() {
        // Pool of 1, a noisy tenant with a deep backlog enqueued first, one
        // well-behaved split arriving after. The newcomer's virtual tag
        // starts at the global virtual time, so it must be granted long
        // before the backlog drains.
        let s = Arc::new(FairScheduler::new(1));
        let noisy = TenantId::new("noisy");
        let good = TenantId::new("good");
        const BACKLOG: u64 = 64;
        std::thread::scope(|scope| {
            // Occupy the pool so the backlog queues deterministically.
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            {
                let (s, gate) = (s.clone(), gate.clone());
                let noisy = noisy.clone();
                scope.spawn(move || {
                    s.run(&noisy, 1, || {
                        let mut open = gate.0.lock().unwrap();
                        while !*open {
                            open = gate.1.wait(open).unwrap();
                        }
                    })
                });
            }
            // Wait until the holder is running, then pile up the backlog.
            while s.stats().grants < 1 {
                std::thread::yield_now();
            }
            for _ in 0..BACKLOG {
                let (s, noisy) = (s.clone(), noisy.clone());
                scope.spawn(move || s.run(&noisy, 1, || ()));
            }
            while s.lock().queue.len() < BACKLOG as usize {
                std::thread::yield_now();
            }
            {
                let (s, good) = (s.clone(), good.clone());
                scope.spawn(move || s.run(&good, 1, || ()));
            }
            while s.lock().queue.len() < BACKLOG as usize + 1 {
                std::thread::yield_now();
            }
            // Release the holder; everything drains.
            *gate.0.lock().unwrap() = true;
            gate.1.notify_all();
        });
        let good_wait = s.max_wait_rounds(&good);
        let noisy_wait = s.max_wait_rounds(&noisy);
        assert!(
            good_wait <= 3,
            "well-behaved tenant waited {good_wait} rounds behind a {BACKLOG}-deep backlog"
        );
        assert!(noisy_wait >= BACKLOG / 2, "noisy backlog should queue on itself");
    }

    #[test]
    fn queue_waits_measured_on_virtual_time_axis() {
        let s = Arc::new(FairScheduler::new(1));
        let a = TenantId::new("a");
        let b = TenantId::new("b");
        std::thread::scope(|scope| {
            // Hold the pool so everything else queues.
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            {
                let (s, gate, a) = (s.clone(), gate.clone(), a.clone());
                scope.spawn(move || {
                    s.run(&a, 1, || {
                        let mut open = gate.0.lock().unwrap();
                        while !*open {
                            open = gate.1.wait(open).unwrap();
                        }
                    })
                });
            }
            while s.stats().grants < 1 {
                std::thread::yield_now();
            }
            for _ in 0..8 {
                let (s, a) = (s.clone(), a.clone());
                scope.spawn(move || s.run(&a, 1, || ()));
            }
            {
                let (s, b) = (s.clone(), b.clone());
                scope.spawn(move || s.run(&b, 1, || ()));
            }
            while s.lock().queue.len() < 9 {
                std::thread::yield_now();
            }
            *gate.0.lock().unwrap() = true;
            gate.1.notify_all();
        });
        let waits = s.take_waits();
        assert_eq!(waits.len(), 10, "one wait sample per grant");
        // The first grant saw an empty queue: zero virtual wait.
        assert!(waits.iter().any(|(_, w)| *w == 0));
        // Backlogged splits watched the global virtual time advance past
        // them; a weight-1 grant moves it WEIGHT_SCALE units.
        let a_max = waits.iter().filter(|(t, _)| *t == a).map(|(_, w)| *w).max().unwrap();
        assert!(a_max >= WEIGHT_SCALE, "deep backlog must accrue virtual wait, got {a_max}");
        assert!(waits.iter().any(|(t, w)| *t == b && *w > 0));
        // Drained: a second take sees nothing.
        assert!(s.take_waits().is_empty());
    }

    #[test]
    fn weight_divides_virtual_cost() {
        let s = FairScheduler::new(1);
        let heavy = TenantId::new("heavy");
        // Two enqueues at weight 2 advance virtual time as far as one at
        // weight 1 would.
        s.run(&heavy, 2, || ());
        s.run(&heavy, 2, || ());
        let g = s.lock();
        assert_eq!(g.vtime.get(&heavy).copied(), Some(WEIGHT_SCALE));
    }
}

//! Write-ahead log for ingester crash recovery.
//!
//! Head chunks live in memory until they seal (§IV-A); a crashed ingester
//! would lose them. Like real Loki, every accepted entry is first
//! appended to a WAL; on restart the WAL replays into a fresh ingester.
//! The "file" is an in-memory segment, matching the repo's simulated disk
//! tier.
//!
//! Record layout (all varints, strings length-prefixed) — one label set
//! followed by a run of entries, like real Loki's series-framed WAL:
//!
//! ```text
//! label_count (k_len k v_len v)* entry_count (zigzag(ts) line_len line)*
//! ```
//!
//! A single append writes a run of one; a batch append writes one record
//! per consecutive same-labels run, so the label set — often half the
//! encoded bytes — is paid once per stream run instead of once per entry.

use crate::compress::{get_uvarint, put_uvarint, unzigzag, zigzag, CorruptBlock};
use omni_model::{LabelSet, LogEntry, LogRecord};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The write-ahead log. Clones share the same segment.
#[derive(Clone, Default)]
pub struct Wal {
    segment: Arc<Mutex<Vec<u8>>>,
    records: Arc<AtomicU64>,
}

impl Wal {
    /// Empty WAL.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record (called *before* the in-memory insert — that
    /// ordering is what makes it a write-ahead log).
    pub fn append(&self, record: &LogRecord) {
        let mut buf = self.segment.lock();
        encode_into(&mut buf, record);
        self.records.fetch_add(1, Ordering::Relaxed);
    }

    /// Append a whole batch under one segment lock, one WAL record per
    /// consecutive same-labels run (replay order equals append order).
    pub fn append_batch(&self, records: &[LogRecord]) {
        if records.is_empty() {
            return;
        }
        let mut buf = self.segment.lock();
        let mut i = 0;
        while i < records.len() {
            let mut j = i + 1;
            while j < records.len() && records[j].labels == records[i].labels {
                j += 1;
            }
            encode_labels(&mut buf, &records[i].labels);
            put_uvarint(&mut buf, (j - i) as u64);
            for record in &records[i..j] {
                encode_entry(&mut buf, record);
            }
            i = j;
        }
        self.records.fetch_add(records.len() as u64, Ordering::Relaxed);
    }

    /// Append one stream-framed run — a label set plus its entries, the
    /// shape of the Loki push protocol — as exactly one WAL record.
    pub fn append_run(&self, labels: &LabelSet, entries: &[LogEntry]) {
        if entries.is_empty() {
            return;
        }
        let mut buf = self.segment.lock();
        encode_labels(&mut buf, labels);
        put_uvarint(&mut buf, entries.len() as u64);
        for entry in entries {
            put_uvarint(&mut buf, zigzag(entry.ts));
            put_uvarint(&mut buf, entry.line.len() as u64);
            buf.extend_from_slice(entry.line.as_bytes());
        }
        self.records.fetch_add(entries.len() as u64, Ordering::Relaxed);
    }

    /// Decode every record (crash-recovery replay).
    pub fn replay(&self) -> Result<Vec<LogRecord>, CorruptBlock> {
        let buf = self.segment.lock();
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < buf.len() {
            let (n_labels, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            let mut labels = LabelSet::new();
            for _ in 0..n_labels {
                let (klen, n) = get_uvarint(&buf[pos..])?;
                pos += n;
                let k = read_str(&buf, &mut pos, klen as usize)?;
                let (vlen, n) = get_uvarint(&buf[pos..])?;
                pos += n;
                let v = read_str(&buf, &mut pos, vlen as usize)?;
                labels.insert(k, v);
            }
            let (entry_count, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            // A run holds at least 3 bytes per entry; a bigger count than
            // the remaining segment cannot be honest.
            if entry_count > (buf.len() - pos) as u64 {
                return Err(CorruptBlock("wal run count exceeds segment size"));
            }
            for _ in 0..entry_count {
                let (ts_z, n) = get_uvarint(&buf[pos..])?;
                pos += n;
                let (line_len, n) = get_uvarint(&buf[pos..])?;
                pos += n;
                let line = read_str(&buf, &mut pos, line_len as usize)?;
                out.push(LogRecord::new(labels.clone(), unzigzag(ts_z), line));
            }
        }
        Ok(out)
    }

    /// Truncate after a checkpoint (all buffered data flushed/offloaded).
    pub fn truncate(&self) {
        self.segment.lock().clear();
        self.records.store(0, Ordering::Relaxed);
    }

    /// Checkpoint: drop every record strictly older than `keep_from_ts`
    /// (those are durable in the chunk store and no longer needed for
    /// crash recovery), re-encoding the survivors in place. Returns the
    /// number of records dropped. A corrupt segment is left untouched —
    /// better an oversized WAL than a discarded one.
    pub fn checkpoint(&self, keep_from_ts: i64) -> usize {
        let survivors = match self.replay() {
            Ok(records) => records,
            Err(_) => return 0,
        };
        let total = survivors.len();
        let keep: Vec<&LogRecord> =
            survivors.iter().filter(|r| r.entry.ts >= keep_from_ts).collect();
        let dropped = total - keep.len();
        if dropped == 0 {
            return 0;
        }
        let mut fresh = Vec::new();
        for r in &keep {
            encode_into(&mut fresh, r);
        }
        let mut buf = self.segment.lock();
        *buf = fresh;
        self.records.store(keep.len() as u64, Ordering::Relaxed);
        dropped
    }

    /// Records currently held.
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Segment size in bytes.
    pub fn bytes(&self) -> usize {
        self.segment.lock().len()
    }
}

fn encode_into(buf: &mut Vec<u8>, record: &LogRecord) {
    encode_labels(buf, &record.labels);
    put_uvarint(buf, 1);
    encode_entry(buf, record);
}

fn encode_labels(buf: &mut Vec<u8>, labels: &LabelSet) {
    put_uvarint(buf, labels.len() as u64);
    for (k, v) in labels.iter() {
        put_uvarint(buf, k.len() as u64);
        buf.extend_from_slice(k.as_bytes());
        put_uvarint(buf, v.len() as u64);
        buf.extend_from_slice(v.as_bytes());
    }
}

fn encode_entry(buf: &mut Vec<u8>, record: &LogRecord) {
    put_uvarint(buf, zigzag(record.entry.ts));
    put_uvarint(buf, record.entry.line.len() as u64);
    buf.extend_from_slice(record.entry.line.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize, len: usize) -> Result<String, CorruptBlock> {
    if *pos + len > buf.len() {
        return Err(CorruptBlock("wal record runs past segment end"));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| CorruptBlock("wal string is not utf-8"))?
        .to_string();
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ingester, Limits};
    use omni_logql::parse_selector;
    use omni_model::labels;

    fn record(i: i64) -> LogRecord {
        LogRecord::new(labels!("app" => "x", "n" => format!("{}", i % 3)), i, format!("line {i}"))
    }

    #[test]
    fn append_replay_roundtrip() {
        let wal = Wal::new();
        let records: Vec<LogRecord> = (0..50).map(record).collect();
        for r in &records {
            wal.append(r);
        }
        assert_eq!(wal.record_count(), 50);
        assert_eq!(wal.replay().unwrap(), records);
    }

    #[test]
    fn truncate_resets() {
        let wal = Wal::new();
        wal.append(&record(1));
        wal.truncate();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.bytes(), 0);
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn clones_share_segment() {
        let wal = Wal::new();
        let clone = wal.clone();
        wal.append(&record(1));
        assert_eq!(clone.record_count(), 1);
    }

    #[test]
    fn unicode_survives() {
        let wal = Wal::new();
        let r = LogRecord::new(labels!("app" => "naïve"), 1, "日本語 line");
        wal.append(&r);
        assert_eq!(wal.replay().unwrap(), vec![r]);
    }

    #[test]
    fn crash_recovery_restores_unflushed_entries() {
        // An ingester accepts entries (WAL-first), then "crashes" before
        // any chunk sealed. A fresh ingester replays the WAL and serves
        // the same queries.
        let wal = Wal::new();
        let ingester = Ingester::new(Limits::default());
        for i in 0..100 {
            let r = record(i);
            wal.append(&r); // write-ahead
            ingester.append(r).unwrap();
        }
        drop(ingester); // crash: head chunks lost

        let recovered = Ingester::new(Limits::default());
        let mut replayed = 0;
        for r in wal.replay().unwrap() {
            recovered.append(r).unwrap();
            replayed += 1;
        }
        assert_eq!(replayed, 100);
        let sel = parse_selector(r#"{app="x"}"#).unwrap();
        let got: usize = recovered.query(&sel, -1, 1_000).iter().map(|(_, es)| es.len()).sum();
        assert_eq!(got, 100);
    }

    #[test]
    fn checkpoint_drops_only_persisted_prefix() {
        let wal = Wal::new();
        for i in 0..100 {
            wal.append(&record(i));
        }
        let before = wal.bytes();
        let dropped = wal.checkpoint(60);
        assert_eq!(dropped, 60);
        assert_eq!(wal.record_count(), 40);
        assert!(wal.bytes() < before, "segment must shrink after checkpoint");
        let survivors = wal.replay().unwrap();
        assert_eq!(survivors.len(), 40);
        assert!(survivors.iter().all(|r| r.entry.ts >= 60));
        // Checkpointing at an older bound is a no-op.
        assert_eq!(wal.checkpoint(10), 0);
        assert_eq!(wal.record_count(), 40);
    }

    #[test]
    fn append_batch_replays_identically_to_sequential_appends() {
        let one_by_one = Wal::new();
        let batched = Wal::new();
        // `record(i)` cycles 3 label sets, so this batch has 50 runs of 1
        // as well as (below) a sorted batch with 3 long runs.
        let records: Vec<LogRecord> = (0..50).map(record).collect();
        for r in &records {
            one_by_one.append(r);
        }
        batched.append_batch(&records);
        assert_eq!(one_by_one.record_count(), batched.record_count());
        assert_eq!(batched.replay().unwrap(), records);
        assert_eq!(one_by_one.replay().unwrap(), batched.replay().unwrap());

        // A stream-contiguous batch encodes each label set once per run:
        // strictly smaller segment, identical replay.
        let mut sorted = records.clone();
        sorted.sort_by_key(|r| r.labels.get("n").unwrap().to_string());
        let run_framed = Wal::new();
        run_framed.append_batch(&sorted);
        assert_eq!(run_framed.replay().unwrap(), sorted);
        assert!(
            run_framed.bytes() < batched.bytes(),
            "run framing must amortise label bytes: {} vs {}",
            run_framed.bytes(),
            batched.bytes()
        );
    }

    #[test]
    fn corrupt_segment_reported() {
        let wal = Wal::new();
        wal.append(&record(1));
        // Truncate the underlying segment mid-record.
        {
            let mut seg = wal.segment.lock();
            let n = seg.len();
            seg.truncate(n - 3);
        }
        assert!(wal.replay().is_err());
    }
}

//! Chunks: "a concept that Loki uses to describe how it stores logs in
//! small buckets. Each log stream fills a separate chunk... Chunks are
//! first stored in memory, and then moved to disk." (§IV-A)
//!
//! A [`HeadChunk`] is the open in-memory bucket taking appends; when it
//! fills (bytes or age) the ingester seals it into a [`SealedChunk`]: the
//! entries delta/varint-encoded and block-compressed.

use crate::compress::{
    compress, decompress, get_uvarint, put_uvarint, unzigzag, zigzag, CorruptBlock,
};
use bytes::Bytes;
use omni_model::{LogEntry, Timestamp};

/// The open, append-only in-memory chunk of one stream.
#[derive(Debug, Default)]
pub struct HeadChunk {
    entries: Vec<LogEntry>,
    bytes: usize,
}

impl HeadChunk {
    /// Empty head chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry. Entries must arrive in non-decreasing timestamp
    /// order (the ingester enforces ordering before calling this).
    pub fn append(&mut self, entry: LogEntry) {
        debug_assert!(
            self.entries.last().map(|e| e.ts <= entry.ts).unwrap_or(true),
            "head chunk appends must be time-ordered"
        );
        self.bytes += entry.line.len();
        self.entries.push(entry);
    }

    /// Uncompressed byte size of buffered lines.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the head chunk has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Timestamp of the first buffered entry.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.entries.first().map(|e| e.ts)
    }

    /// Timestamp of the last buffered entry.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.entries.last().map(|e| e.ts)
    }

    /// Entries in `(start, end]`.
    pub fn entries_in(&self, start: Timestamp, end: Timestamp) -> Vec<LogEntry> {
        self.entries.iter().filter(|e| e.ts > start && e.ts <= end).cloned().collect()
    }

    /// Seal into a compressed chunk, leaving this head empty.
    pub fn seal(&mut self) -> SealedChunk {
        let entries = std::mem::take(&mut self.entries);
        self.bytes = 0;
        SealedChunk::from_entries(&entries)
    }
}

/// An immutable, compressed chunk.
#[derive(Debug, Clone)]
pub struct SealedChunk {
    /// Compressed block.
    data: Bytes,
    /// First entry timestamp.
    pub min_ts: Timestamp,
    /// Last entry timestamp.
    pub max_ts: Timestamp,
    /// Entry count.
    pub count: usize,
    /// Uncompressed payload size (encoded entries).
    pub uncompressed: usize,
}

impl SealedChunk {
    /// Encode and compress entries (must be time-ordered).
    pub fn from_entries(entries: &[LogEntry]) -> Self {
        let mut buf = Vec::with_capacity(entries.iter().map(|e| e.line.len() + 4).sum());
        put_uvarint(&mut buf, entries.len() as u64);
        let base_ts = entries.first().map(|e| e.ts).unwrap_or(0);
        put_uvarint(&mut buf, zigzag(base_ts));
        let mut prev = base_ts;
        for e in entries {
            put_uvarint(&mut buf, zigzag(e.ts - prev));
            prev = e.ts;
            put_uvarint(&mut buf, e.line.len() as u64);
            buf.extend_from_slice(e.line.as_bytes());
        }
        let uncompressed = buf.len();
        let data = Bytes::from(compress(&buf));
        Self {
            data,
            min_ts: base_ts,
            max_ts: entries.last().map(|e| e.ts).unwrap_or(0),
            count: entries.len(),
            uncompressed,
        }
    }

    /// Compressed size in bytes.
    pub fn compressed_size(&self) -> usize {
        self.data.len()
    }

    /// The raw compressed block (for object-store serialization).
    pub fn raw_block(&self) -> &[u8] {
        &self.data
    }

    /// Reassemble a chunk from its stored parts (object-store
    /// deserialization path).
    pub fn from_parts(
        data: Bytes,
        min_ts: Timestamp,
        max_ts: Timestamp,
        count: usize,
        uncompressed: usize,
    ) -> Self {
        Self { data, min_ts, max_ts, count, uncompressed }
    }

    /// Compression ratio (uncompressed / compressed).
    pub fn ratio(&self) -> f64 {
        if self.data.is_empty() {
            1.0
        } else {
            self.uncompressed as f64 / self.data.len() as f64
        }
    }

    /// Decode all entries.
    pub fn decode(&self) -> Result<Vec<LogEntry>, CorruptBlock> {
        let buf = decompress(&self.data)?;
        let mut pos = 0;
        let (count, n) = get_uvarint(&buf[pos..])?;
        pos += n;
        let (base_z, n) = get_uvarint(&buf[pos..])?;
        pos += n;
        let mut ts = unzigzag(base_z);
        let mut out = Vec::with_capacity(count as usize);
        let mut first = true;
        for _ in 0..count {
            let (delta_z, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            if first {
                // base_ts already equals the first entry's ts; the first
                // delta is stored as 0.
                ts += unzigzag(delta_z);
                first = false;
            } else {
                ts += unzigzag(delta_z);
            }
            let (len, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            let len = len as usize;
            if pos + len > buf.len() {
                return Err(CorruptBlock("line runs past block end"));
            }
            let line = std::str::from_utf8(&buf[pos..pos + len])
                .map_err(|_| CorruptBlock("line is not valid utf-8"))?
                .to_string();
            pos += len;
            out.push(LogEntry { ts, line });
        }
        Ok(out)
    }

    /// Decode only entries in `(start, end]`.
    pub fn decode_range(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<LogEntry>, CorruptBlock> {
        if self.max_ts <= start || self.min_ts > end {
            return Ok(Vec::new());
        }
        Ok(self.decode()?.into_iter().filter(|e| e.ts > start && e.ts <= end).collect())
    }

    /// Whether this chunk may contain entries in `(start, end]`.
    pub fn overlaps(&self, start: Timestamp, end: Timestamp) -> bool {
        self.count > 0 && self.max_ts > start && self.min_ts <= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<LogEntry> {
        (0..n)
            .map(|i| LogEntry::new(1_000 + i as i64 * 7, format!("line number {i} with payload")))
            .collect()
    }

    #[test]
    fn seal_and_decode_roundtrip() {
        let es = entries(100);
        let chunk = SealedChunk::from_entries(&es);
        assert_eq!(chunk.count, 100);
        assert_eq!(chunk.min_ts, 1_000);
        assert_eq!(chunk.max_ts, 1_000 + 99 * 7);
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn empty_chunk() {
        let chunk = SealedChunk::from_entries(&[]);
        assert_eq!(chunk.count, 0);
        assert!(chunk.decode().unwrap().is_empty());
        assert!(!chunk.overlaps(i64::MIN, i64::MAX));
    }

    #[test]
    fn head_chunk_tracks_bytes_and_seals() {
        let mut head = HeadChunk::new();
        for e in entries(10) {
            head.append(e);
        }
        assert_eq!(head.len(), 10);
        assert!(head.bytes() > 0);
        let sealed = head.seal();
        assert!(head.is_empty());
        assert_eq!(head.bytes(), 0);
        assert_eq!(sealed.count, 10);
    }

    #[test]
    fn decode_range_filters_half_open() {
        let es = entries(10); // ts: 1000, 1007, ..., 1063
        let chunk = SealedChunk::from_entries(&es);
        let got = chunk.decode_range(1000, 1014).unwrap();
        // (1000, 1014] -> 1007, 1014
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, 1007);
        assert_eq!(got[1].ts, 1014);
        assert!(chunk.decode_range(2000, 3000).unwrap().is_empty());
    }

    #[test]
    fn repeated_lines_compress() {
        let es: Vec<LogEntry> =
            (0..500).map(|i| LogEntry::new(i, "the same line every time, forever")).collect();
        let chunk = SealedChunk::from_entries(&es);
        assert!(chunk.ratio() > 5.0, "ratio {}", chunk.ratio());
        assert_eq!(chunk.decode().unwrap().len(), 500);
    }

    #[test]
    fn duplicate_timestamps_survive() {
        let es = vec![LogEntry::new(5, "a"), LogEntry::new(5, "b"), LogEntry::new(5, "c")];
        let chunk = SealedChunk::from_entries(&es);
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn unicode_lines_survive() {
        let es = vec![LogEntry::new(1, "日本語 naïve — ok")];
        let chunk = SealedChunk::from_entries(&es);
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn head_entries_in_window() {
        let mut head = HeadChunk::new();
        for e in entries(5) {
            head.append(e);
        }
        let got = head.entries_in(1000, 1007);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ts, 1007);
    }
}

//! Chunks: "a concept that Loki uses to describe how it stores logs in
//! small buckets. Each log stream fills a separate chunk... Chunks are
//! first stored in memory, and then moved to disk." (§IV-A)
//!
//! A [`HeadChunk`] is the open in-memory bucket taking appends; when it
//! fills (bytes or age) the ingester seals it into a [`SealedChunk`]. A
//! sealed chunk is a sequence of independently-compressed **blocks**, each
//! carrying its own min/max timestamp in a small uncompressed header, so
//! range reads decompress only the blocks that overlap the window instead
//! of the whole chunk (Loki's chunk-internal block index).

use crate::compress::{
    compress, decompress, get_uvarint, put_uvarint, unzigzag, zigzag, CorruptBlock,
};
use bytes::Bytes;
use omni_model::{LogEntry, Timestamp};

/// Target uncompressed payload size of one block inside a sealed chunk.
/// Small enough that a narrow range query skips most of a 256 KiB chunk,
/// large enough that the LZ77 window still sees plenty of history.
pub const BLOCK_TARGET_BYTES: usize = 8 * 1024;

/// The open, append-only in-memory chunk of one stream.
#[derive(Debug, Default)]
pub struct HeadChunk {
    entries: Vec<LogEntry>,
    bytes: usize,
}

impl HeadChunk {
    /// Empty head chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry. Entries must arrive in non-decreasing timestamp
    /// order (the ingester enforces ordering before calling this).
    pub fn append(&mut self, entry: LogEntry) {
        debug_assert!(
            self.entries.last().map(|e| e.ts <= entry.ts).unwrap_or(true),
            "head chunk appends must be time-ordered"
        );
        self.bytes += entry.line.len();
        self.entries.push(entry);
    }

    /// Uncompressed byte size of buffered lines.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the head chunk has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Timestamp of the first buffered entry.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.entries.first().map(|e| e.ts)
    }

    /// Timestamp of the last buffered entry.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.entries.last().map(|e| e.ts)
    }

    /// Entries in `(start, end]`.
    pub fn entries_in(&self, start: Timestamp, end: Timestamp) -> Vec<LogEntry> {
        self.entries.iter().filter(|e| e.ts > start && e.ts <= end).cloned().collect()
    }

    /// Seal into a compressed chunk, leaving this head empty.
    pub fn seal(&mut self) -> SealedChunk {
        let entries = std::mem::take(&mut self.entries);
        self.bytes = 0;
        SealedChunk::from_entries(&entries)
    }
}

/// An immutable, compressed chunk: a block-count varint followed by
/// `[zigzag(min_ts), zigzag(max_ts), count, uncompressed_len,
/// compressed_len, compressed payload]` per block. Block headers stay
/// uncompressed so a range read can walk them and skip whole blocks.
#[derive(Debug, Clone)]
pub struct SealedChunk {
    /// Block headers + compressed block payloads.
    data: Bytes,
    /// First entry timestamp.
    pub min_ts: Timestamp,
    /// Last entry timestamp.
    pub max_ts: Timestamp,
    /// Entry count.
    pub count: usize,
    /// Uncompressed payload size (encoded entries, summed over blocks).
    pub uncompressed: usize,
}

/// One parsed block header plus its compressed payload.
struct BlockRef<'a> {
    min_ts: Timestamp,
    max_ts: Timestamp,
    count: usize,
    uncompressed_len: usize,
    payload: &'a [u8],
}

/// What a range decode actually did inside one chunk — the observable
/// cost (and the observable block-skip win) that flows up into
/// `QueryStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Blocks whose payload was decompressed and decoded.
    pub blocks_decoded: usize,
    /// Blocks the per-block timestamp index let us skip entirely.
    pub blocks_skipped: usize,
    /// Uncompressed bytes produced by the decoded blocks.
    pub bytes_decompressed: usize,
}

impl DecodeStats {
    /// Fold another decode's stats into this one.
    pub fn absorb(&mut self, other: DecodeStats) {
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.bytes_decompressed += other.bytes_decompressed;
    }
}

impl SealedChunk {
    /// Encode and compress entries (must be time-ordered), cutting a new
    /// block whenever the current one reaches [`BLOCK_TARGET_BYTES`].
    pub fn from_entries(entries: &[LogEntry]) -> Self {
        if entries.is_empty() {
            return Self { data: Bytes::new(), min_ts: 0, max_ts: 0, count: 0, uncompressed: 0 };
        }
        // Split into time-contiguous runs of roughly BLOCK_TARGET_BYTES.
        let mut blocks: Vec<&[LogEntry]> = Vec::new();
        let mut block_start = 0;
        let mut block_bytes = 0;
        for (i, e) in entries.iter().enumerate() {
            block_bytes += e.line.len();
            if block_bytes >= BLOCK_TARGET_BYTES {
                blocks.push(&entries[block_start..=i]);
                block_start = i + 1;
                block_bytes = 0;
            }
        }
        if block_start < entries.len() {
            blocks.push(&entries[block_start..]);
        }

        let mut data = Vec::new();
        put_uvarint(&mut data, blocks.len() as u64);
        let mut uncompressed = 0;
        let mut payload = Vec::with_capacity(BLOCK_TARGET_BYTES + 64);
        for block in blocks {
            payload.clear();
            put_uvarint(&mut payload, block.len() as u64);
            let base_ts = block[0].ts;
            put_uvarint(&mut payload, zigzag(base_ts));
            let mut prev = base_ts;
            for e in block {
                put_uvarint(&mut payload, zigzag(e.ts - prev));
                prev = e.ts;
                put_uvarint(&mut payload, e.line.len() as u64);
                payload.extend_from_slice(e.line.as_bytes());
            }
            uncompressed += payload.len();
            let compressed = compress(&payload);
            put_uvarint(&mut data, zigzag(base_ts));
            put_uvarint(&mut data, zigzag(block[block.len() - 1].ts));
            put_uvarint(&mut data, block.len() as u64);
            put_uvarint(&mut data, payload.len() as u64);
            put_uvarint(&mut data, compressed.len() as u64);
            data.extend_from_slice(&compressed);
        }
        Self {
            data: Bytes::from(data),
            min_ts: entries[0].ts,
            max_ts: entries[entries.len() - 1].ts,
            count: entries.len(),
            uncompressed,
        }
    }

    /// Compressed size in bytes.
    pub fn compressed_size(&self) -> usize {
        self.data.len()
    }

    /// The raw block container (for object-store serialization).
    pub fn raw_block(&self) -> &[u8] {
        &self.data
    }

    /// Reassemble a chunk from its stored parts (object-store
    /// deserialization path).
    pub fn from_parts(
        data: Bytes,
        min_ts: Timestamp,
        max_ts: Timestamp,
        count: usize,
        uncompressed: usize,
    ) -> Self {
        Self { data, min_ts, max_ts, count, uncompressed }
    }

    /// Compression ratio (uncompressed / compressed).
    pub fn ratio(&self) -> f64 {
        if self.data.is_empty() {
            1.0
        } else {
            self.uncompressed as f64 / self.data.len() as f64
        }
    }

    /// Number of compressed blocks inside this chunk.
    pub fn block_count(&self) -> usize {
        if self.data.is_empty() {
            return 0;
        }
        get_uvarint(&self.data).map(|(n, _)| n as usize).unwrap_or(0)
    }

    /// Parse the block headers, yielding each block lazily without
    /// touching its compressed payload.
    fn blocks(&self) -> Result<Vec<BlockRef<'_>>, CorruptBlock> {
        if self.data.is_empty() {
            return Ok(Vec::new());
        }
        let buf = &self.data[..];
        let mut pos = 0;
        let (block_count, n) = get_uvarint(&buf[pos..])?;
        pos += n;
        // Each block needs at least a 6-byte header; a count beyond that
        // cannot be honest, and must not drive a Vec pre-allocation.
        if block_count > (buf.len() / 6) as u64 + 1 {
            return Err(CorruptBlock("block count exceeds container size"));
        }
        let mut out = Vec::with_capacity(block_count as usize);
        for _ in 0..block_count {
            let (min_z, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            let (max_z, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            let (count, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            let (uncompressed_len, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            let (compressed_len, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            if compressed_len > (buf.len() - pos) as u64 {
                return Err(CorruptBlock("block payload runs past chunk end"));
            }
            let compressed_len = compressed_len as usize;
            out.push(BlockRef {
                min_ts: unzigzag(min_z),
                max_ts: unzigzag(max_z),
                count: count as usize,
                uncompressed_len: uncompressed_len as usize,
                payload: &buf[pos..pos + compressed_len],
            });
            pos += compressed_len;
        }
        Ok(out)
    }

    /// Decompress and decode one block payload.
    fn decode_block(payload: &[u8], out: &mut Vec<LogEntry>) -> Result<(), CorruptBlock> {
        let buf = decompress(payload)?;
        let mut pos = 0;
        let (count, n) = get_uvarint(&buf[pos..])?;
        pos += n;
        let (base_z, n) = get_uvarint(&buf[pos..])?;
        pos += n;
        let mut ts = unzigzag(base_z);
        // Every entry costs at least 2 bytes; never pre-allocate past what
        // the payload could actually hold.
        if count > buf.len() as u64 {
            return Err(CorruptBlock("entry count exceeds block size"));
        }
        out.reserve(count as usize);
        for _ in 0..count {
            // The first delta is stored as 0 (base_ts already equals the
            // first entry's ts), so unconditional accumulation is correct.
            let (delta_z, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            ts = ts.wrapping_add(unzigzag(delta_z));
            let (len, n) = get_uvarint(&buf[pos..])?;
            pos += n;
            if len > (buf.len() - pos) as u64 {
                return Err(CorruptBlock("line runs past block end"));
            }
            let len = len as usize;
            let line = std::str::from_utf8(&buf[pos..pos + len])
                .map_err(|_| CorruptBlock("line is not valid utf-8"))?
                .to_string();
            pos += len;
            out.push(LogEntry { ts, line });
        }
        Ok(())
    }

    /// Decode all entries.
    pub fn decode(&self) -> Result<Vec<LogEntry>, CorruptBlock> {
        // `count` may come from an untrusted stored header; cap the
        // pre-allocation (decode still succeeds for honest large chunks).
        let mut out = Vec::with_capacity(self.count.min(self.data.len()));
        for block in self.blocks()? {
            Self::decode_block(block.payload, &mut out)?;
        }
        Ok(out)
    }

    /// Decode only entries in `(start, end]`, decompressing only blocks
    /// whose time span overlaps the window.
    pub fn decode_range(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<LogEntry>, CorruptBlock> {
        Ok(self.decode_range_counted(start, end)?.0)
    }

    /// [`Self::decode_range`] that also reports how many blocks were
    /// actually decompressed — the observable block-skip win.
    pub fn decode_range_counted(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<(Vec<LogEntry>, usize), CorruptBlock> {
        let (entries, stats) = self.decode_range_stats(start, end)?;
        Ok((entries, stats.blocks_decoded))
    }

    /// [`Self::decode_range`] with full [`DecodeStats`]: blocks decoded
    /// vs. skipped and the uncompressed bytes produced. A chunk entirely
    /// outside the window counts all its blocks as skipped (the header
    /// check *is* the skip).
    pub fn decode_range_stats(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<(Vec<LogEntry>, DecodeStats), CorruptBlock> {
        let mut stats = DecodeStats::default();
        if self.count == 0 || self.max_ts <= start || self.min_ts > end {
            stats.blocks_skipped = self.block_count();
            return Ok((Vec::new(), stats));
        }
        let mut out = Vec::new();
        for block in self.blocks()? {
            if block.count == 0 || block.max_ts <= start || block.min_ts > end {
                stats.blocks_skipped += 1;
                continue;
            }
            let before = out.len();
            Self::decode_block(block.payload, &mut out)?;
            stats.blocks_decoded += 1;
            stats.bytes_decompressed += block.uncompressed_len;
            // Filter in place: only the freshly decoded tail needs it.
            let mut keep = before;
            for i in before..out.len() {
                if out[i].ts > start && out[i].ts <= end {
                    out.swap(keep, i);
                    keep += 1;
                }
            }
            out.truncate(keep);
        }
        Ok((out, stats))
    }

    /// Whether this chunk may contain entries in `(start, end]`.
    pub fn overlaps(&self, start: Timestamp, end: Timestamp) -> bool {
        self.count > 0 && self.max_ts > start && self.min_ts <= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<LogEntry> {
        (0..n)
            .map(|i| LogEntry::new(1_000 + i as i64 * 7, format!("line number {i} with payload")))
            .collect()
    }

    #[test]
    fn seal_and_decode_roundtrip() {
        let es = entries(100);
        let chunk = SealedChunk::from_entries(&es);
        assert_eq!(chunk.count, 100);
        assert_eq!(chunk.min_ts, 1_000);
        assert_eq!(chunk.max_ts, 1_000 + 99 * 7);
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn empty_chunk() {
        let chunk = SealedChunk::from_entries(&[]);
        assert_eq!(chunk.count, 0);
        assert_eq!(chunk.block_count(), 0);
        assert!(chunk.decode().unwrap().is_empty());
        assert!(!chunk.overlaps(i64::MIN, i64::MAX));
    }

    #[test]
    fn head_chunk_tracks_bytes_and_seals() {
        let mut head = HeadChunk::new();
        for e in entries(10) {
            head.append(e);
        }
        assert_eq!(head.len(), 10);
        assert!(head.bytes() > 0);
        let sealed = head.seal();
        assert!(head.is_empty());
        assert_eq!(head.bytes(), 0);
        assert_eq!(sealed.count, 10);
    }

    #[test]
    fn decode_range_filters_half_open() {
        let es = entries(10); // ts: 1000, 1007, ..., 1063
        let chunk = SealedChunk::from_entries(&es);
        let got = chunk.decode_range(1000, 1014).unwrap();
        // (1000, 1014] -> 1007, 1014
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, 1007);
        assert_eq!(got[1].ts, 1014);
        assert!(chunk.decode_range(2000, 3000).unwrap().is_empty());
    }

    #[test]
    fn repeated_lines_compress() {
        let es: Vec<LogEntry> =
            (0..500).map(|i| LogEntry::new(i, "the same line every time, forever")).collect();
        let chunk = SealedChunk::from_entries(&es);
        assert!(chunk.ratio() > 5.0, "ratio {}", chunk.ratio());
        assert_eq!(chunk.decode().unwrap().len(), 500);
    }

    #[test]
    fn duplicate_timestamps_survive() {
        let es = vec![LogEntry::new(5, "a"), LogEntry::new(5, "b"), LogEntry::new(5, "c")];
        let chunk = SealedChunk::from_entries(&es);
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn unicode_lines_survive() {
        let es = vec![LogEntry::new(1, "日本語 naïve — ok")];
        let chunk = SealedChunk::from_entries(&es);
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn head_entries_in_window() {
        let mut head = HeadChunk::new();
        for e in entries(5) {
            head.append(e);
        }
        let got = head.entries_in(1000, 1007);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ts, 1007);
    }

    #[test]
    fn large_chunk_splits_into_blocks() {
        let es = entries(2_000);
        let chunk = SealedChunk::from_entries(&es);
        assert!(chunk.block_count() > 1, "expected multiple blocks, got {}", chunk.block_count());
        assert_eq!(chunk.decode().unwrap(), es);
    }

    #[test]
    fn narrow_range_skip_win_is_visible_in_decode_stats() {
        let es = entries(2_000); // ts: 1000 .. 1000 + 1999*7
        let chunk = SealedChunk::from_entries(&es);
        let total = chunk.block_count();
        assert!(total > 2);
        // Narrow window in the middle of the chunk.
        let mid = 1_000 + 1_000 * 7;
        let (got, stats) = chunk.decode_range_stats(mid, mid + 70).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|e| e.ts > mid && e.ts <= mid + 70));
        // The stats partition the chunk: every block either decoded or
        // skipped, with most skipped for a narrow window.
        assert_eq!(stats.blocks_decoded + stats.blocks_skipped, total);
        assert!(stats.blocks_decoded >= 1);
        assert!(
            stats.blocks_skipped > stats.blocks_decoded,
            "narrow range should skip most blocks: {stats:?} of {total}"
        );
        // Decompressed bytes account only for decoded blocks.
        assert!(stats.bytes_decompressed > 0);
        assert!(stats.bytes_decompressed < chunk.uncompressed);
        // A fully disjoint window touches no payload at all.
        let (none, miss) = chunk.decode_range_stats(1_000_000, 2_000_000).unwrap();
        assert!(none.is_empty());
        assert_eq!(miss.blocks_decoded, 0);
        assert_eq!(miss.blocks_skipped, total);
        assert_eq!(miss.bytes_decompressed, 0);
    }

    #[test]
    fn full_range_decode_matches_per_block_decode() {
        let es = entries(2_000);
        let chunk = SealedChunk::from_entries(&es);
        let (all, decoded) = chunk.decode_range_counted(i64::MIN, i64::MAX).unwrap();
        assert_eq!(all, es);
        assert_eq!(decoded, chunk.block_count());
    }

    #[test]
    fn truncated_chunk_container_is_rejected() {
        let es = entries(200);
        let chunk = SealedChunk::from_entries(&es);
        let raw = chunk.raw_block();
        let truncated = Bytes::from(raw[..raw.len() / 2].to_vec());
        let bad = SealedChunk::from_parts(
            truncated,
            chunk.min_ts,
            chunk.max_ts,
            chunk.count,
            chunk.uncompressed,
        );
        assert!(bad.decode().is_err());
    }
}

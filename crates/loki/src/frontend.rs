//! The query frontend: interval splitting, a split-aligned results
//! cache, and per-query limits — Loki's `query-frontend` component.
//!
//! The paper's single pane of glass (§IV) is Grafana dashboards
//! re-issuing the same LogQL over overlapping, mostly-immutable windows
//! against a two-year retention store. Real Loki serves that workload
//! through its query-frontend: queries are split on
//! `split_queries_by_interval` boundaries, the splits run in parallel,
//! and each split's result is cached so the next refresh only executes
//! the still-mutable tail. This module reproduces that shape:
//!
//! * [`QueryFrontend::run_log_query`] / [`QueryFrontend::run_range_query`]
//!   split on absolute multiples of [`Limits::split_interval_ns`] —
//!   alignment makes consecutive refreshes produce *identical* splits —
//!   and fan the cache misses out over the engine's shard-scoped scan
//!   threads;
//! * results are cached per split, keyed by the normalized query text
//!   and the split window, with the split's [`QueryStats`] stored
//!   alongside so cache hits report truthful statistics;
//! * cached windows are invalidated by appends landing inside them
//!   (out-of-order data, restored archives), by retention sweeps
//!   crossing them, and wholesale by shard crash/recovery;
//! * per-query limits — [`Limits::max_entries_per_query`],
//!   [`Limits::max_bytes_scanned`], and the virtual-clock deadline
//!   [`Limits::query_timeout_ns`] — reject oversized queries with a
//!   typed [`QueryError::LimitExceeded`].

use crate::engine::{self, Direction, QueryStats};
use crate::ingester::Ingester;
use crate::limits::{Limits, TenantLimits};
use crate::scheduler::{FairScheduler, SchedulerStats};
use crate::QueryError;
use omni_logql::{InstantVector, LogQuery, Matrix, MetricQuery};
use omni_model::{LabelSet, LogRecord, Sample, SimClock, TenantId, Timestamp};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on cached split results; the cache is cleared wholesale
/// when it fills (mirroring the distributor's fingerprint-cache policy:
/// churn past this size means the cache is not earning its memory).
const CACHE_MAX: usize = 4_096;

/// A window that would split into more sub-queries than this executes
/// unsplit: sentinel spans like `(i64::MIN, now]` must not explode into
/// an astronomical number of splits.
const MAX_SPLITS: usize = 256;

/// Concurrency bound of the split-scan pool the fair scheduler guards.
/// Matches the order of shard-scan threads the engine itself spawns.
const SCHED_POOL: usize = 8;

/// Bound on buffered [`QueryRecord`]s awaiting a drain; oldest records
/// are dropped first so a stalled consumer costs history, not memory.
const RECORD_CAP: usize = 1_024;

/// Per-query execution context: whose query this is and which resolved
/// per-tenant limits bound it. The tenant id partitions the results
/// cache (two tenants never share an entry, even for the same query
/// text) and the weight drives the fair scheduler.
#[derive(Debug, Clone)]
pub struct QueryContext {
    /// The querying tenant.
    pub tenant: TenantId,
    /// Entry cap for this query.
    pub max_entries_per_query: usize,
    /// Fresh-bytes-scanned budget for this query.
    pub max_bytes_scanned: usize,
    /// Fair-scheduler weight.
    pub weight: u32,
}

impl QueryContext {
    /// The context unscoped (legacy, pre-tenant) queries run under: the
    /// anonymous tenant bounded by the cluster-wide limits.
    pub fn anonymous(limits: &Limits) -> Self {
        Self {
            tenant: TenantId::anonymous(),
            max_entries_per_query: limits.max_entries_per_query,
            max_bytes_scanned: limits.max_bytes_scanned,
            weight: 1,
        }
    }

    /// The context for `tenant` under its resolved limits.
    pub fn for_tenant(tenant: TenantId, limits: &TenantLimits) -> Self {
        Self {
            tenant,
            max_entries_per_query: limits.max_entries_per_query,
            max_bytes_scanned: limits.max_bytes_scanned,
            weight: limits.query_weight,
        }
    }
}

/// Which per-query limit a rejected query hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitViolation {
    /// The query requested more entries than `max_entries_per_query`.
    Entries {
        /// The configured ceiling.
        limit: usize,
        /// What the query asked for.
        requested: usize,
    },
    /// Freshly executed splits scanned more than `max_bytes_scanned`.
    BytesScanned {
        /// The configured byte budget.
        limit: usize,
        /// Line bytes actually scanned before the query was cut off.
        scanned: usize,
    },
    /// The virtual-clock deadline passed before the query completed.
    Deadline {
        /// Arrival time plus `query_timeout_ns`.
        deadline: Timestamp,
        /// The clock when the check failed.
        now: Timestamp,
    },
}

impl std::fmt::Display for LimitViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LimitViolation::Entries { limit, requested } => {
                write!(f, "query requested {requested} entries, limit is {limit}")
            }
            LimitViolation::BytesScanned { limit, scanned } => {
                write!(f, "query scanned {scanned} bytes, budget is {limit}")
            }
            LimitViolation::Deadline { deadline, now } => {
                write!(f, "query deadline {deadline} passed (now {now})")
            }
        }
    }
}

/// Point-in-time frontend counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Sub-queries planned (served from cache or executed).
    pub splits_total: u64,
    /// Splits answered from the results cache.
    pub cache_hits: u64,
    /// Splits that had to execute against the shards.
    pub cache_misses: u64,
    /// Queries rejected by a per-query limit.
    pub rejected_total: u64,
    /// Split results currently cached.
    pub cached_entries: usize,
}

/// One split's contribution to a query: the window it covered, whether
/// the results cache answered it, the execution statistics behind its
/// result (replayed verbatim for hits), and how long it queued behind
/// the fair scheduler — Loki's per-subquery statistics breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitStat {
    /// Split window start (exclusive).
    pub start: Timestamp,
    /// Split window end (inclusive).
    pub end: Timestamp,
    /// Whether the results cache answered this split.
    pub cached: bool,
    /// The split's execution statistics (for hits: the statistics of
    /// the execution that filled the cache entry).
    pub stats: QueryStats,
    /// Virtual nanoseconds this split queued behind the fair scheduler
    /// before its scan was granted. Zero for cache hits — they never
    /// touch the scan pool.
    pub queue_wait_vns: u64,
}

/// The full statistics report for one frontend query: the merged
/// [`QueryStats`] every existing caller sees, plus the per-split
/// breakdown behind it — Loki's `/loki/api/v1/query` statistics object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryReport {
    /// Statistics merged across every split.
    pub stats: QueryStats,
    /// Per-split breakdown, in ascending window order.
    pub splits: Vec<SplitStat>,
    /// Splits answered from the results cache.
    pub cache_hits: usize,
    /// Splits that executed against the shards.
    pub cache_misses: usize,
    /// Total scheduler queue wait across executed splits, in virtual
    /// nanoseconds.
    pub queue_wait_vns: u64,
}

impl QueryReport {
    fn from_splits(stats: QueryStats, splits: Vec<SplitStat>) -> Self {
        let cache_hits = splits.iter().filter(|s| s.cached).count();
        let cache_misses = splits.len() - cache_hits;
        let queue_wait_vns = splits.iter().map(|s| s.queue_wait_vns).sum();
        Self { stats, splits, cache_hits, cache_misses, queue_wait_vns }
    }
}

/// One completed query as observed by the frontend, buffered for the
/// monitoring stack to drain: the slow-query log and the query-latency
/// histogram are built from these.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The querying tenant.
    pub tenant: TenantId,
    /// Normalized query text.
    pub query: String,
    /// Query window start.
    pub start: Timestamp,
    /// Query window end.
    pub end: Timestamp,
    /// The full statistics report.
    pub report: QueryReport,
}

/// One split's cache identity: the normalized query text plus the exact
/// split window and result-shaping parameters. Two textual spellings of
/// the same query (whitespace differences outside string literals)
/// share an entry; anything semantically distinct cannot collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Owning tenant: the cache is tenant-partitioned so one tenant's
    /// results can never be served to (or evicted into) another's view.
    tenant: TenantId,
    query: String,
    start: Timestamp,
    end: Timestamp,
    /// `0` for log queries, the evaluation step for range queries.
    step_ns: i64,
    limit: usize,
    direction: Direction,
}

#[derive(Clone)]
enum CachedData {
    Logs(Vec<LogRecord>),
    Series(Matrix),
}

struct CacheEntry {
    data: CachedData,
    /// The split's execution statistics, replayed verbatim on a hit so
    /// warm and cold refreshes report the same truthful numbers.
    stats: QueryStats,
    /// Oldest timestamp the result depends on: the split start for log
    /// splits, `first step − range` for range splits. An append or a
    /// retention horizon inside `(data_start, end]` invalidates.
    data_start: Timestamp,
    end: Timestamp,
}

struct FrontendShared {
    cache: Mutex<HashMap<CacheKey, CacheEntry>>,
    /// Newest `end` across cached entries: an append strictly newer than
    /// this cannot invalidate anything, keeping the hot in-order ingest
    /// path at one atomic load.
    max_cached_end: AtomicI64,
    splits: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    /// `bytes_scanned` each cache hit avoided re-scanning; drained by
    /// the stack into the `omni_frontend_bytes_saved` histogram.
    bytes_saved: Mutex<Vec<u64>>,
    /// Completed-query records awaiting a drain (oldest first, bounded
    /// by [`RECORD_CAP`]); the stack builds the slow-query log and the
    /// query-latency histogram from these.
    records: Mutex<VecDeque<QueryRecord>>,
    /// Weighted fair gate over the split-scan pool: a noisy tenant's
    /// fan-out queues on its own virtual time instead of monopolising
    /// the scoped threads.
    scheduler: FairScheduler,
}

/// The query frontend. Cheap to clone (shared state behind an `Arc`);
/// one instance fronts a whole [`LokiCluster`](crate::LokiCluster).
#[derive(Clone)]
pub struct QueryFrontend {
    shared: Arc<FrontendShared>,
    limits: Limits,
    clock: SimClock,
}

impl QueryFrontend {
    pub(crate) fn new(limits: Limits, clock: SimClock) -> Self {
        Self {
            shared: Arc::new(FrontendShared {
                cache: Mutex::new(HashMap::new()),
                max_cached_end: AtomicI64::new(i64::MIN),
                splits: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                bytes_saved: Mutex::new(Vec::new()),
                records: Mutex::new(VecDeque::new()),
                scheduler: FairScheduler::new(SCHED_POOL),
            }),
            limits,
            clock,
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> FrontendStats {
        FrontendStats {
            splits_total: self.shared.splits.load(Ordering::Relaxed),
            cache_hits: self.shared.hits.load(Ordering::Relaxed),
            cache_misses: self.shared.misses.load(Ordering::Relaxed),
            rejected_total: self.shared.rejected.load(Ordering::Relaxed),
            cached_entries: self.shared.cache.lock().len(),
        }
    }

    /// Drain the bytes-saved samples accumulated by cache hits since the
    /// last call (one sample per hit: the `bytes_scanned` the hit
    /// avoided re-reading).
    pub fn take_bytes_saved(&self) -> Vec<u64> {
        std::mem::take(&mut *self.shared.bytes_saved.lock())
    }

    /// Drain the completed-query records buffered since the last call
    /// (oldest first). Log and range queries record one entry each;
    /// instant queries do not (every ruler tick would flood the buffer
    /// with identical rule evaluations).
    pub fn take_query_records(&self) -> Vec<QueryRecord> {
        self.shared.records.lock().drain(..).collect()
    }

    fn record_query(
        &self,
        ctx: &QueryContext,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        report: &QueryReport,
    ) {
        let mut records = self.shared.records.lock();
        while records.len() >= RECORD_CAP {
            records.pop_front();
        }
        records.push_back(QueryRecord {
            tenant: ctx.tenant.clone(),
            query: query.to_string(),
            start,
            end,
            report: report.clone(),
        });
    }

    /// An append of records spanning `[min_ts, max_ts]` landed: drop
    /// every cached window such data could have changed. Streams may
    /// appear at arbitrarily old timestamps (per-stream ordering only),
    /// so this must handle out-of-order arrivals, not just the tail.
    pub(crate) fn note_append(&self, min_ts: Timestamp, max_ts: Timestamp) {
        if min_ts > self.shared.max_cached_end.load(Ordering::Acquire) {
            return;
        }
        // A late-but-tolerated entry is clamped up to its stream head's
        // newest timestamp, which ordering admission bounds by
        // `entry.ts + tolerance` — widen the span to cover the clamp.
        let max_ts = max_ts.saturating_add(self.limits.out_of_order_tolerance_ns);
        let mut cache = self.shared.cache.lock();
        // Keep an entry only if the whole append range is outside its
        // data window (conservative: assumes any timestamp in
        // `[min_ts, max_ts]` may have been written).
        cache.retain(|_, e| e.end < min_ts || e.data_start >= max_ts);
        let new_max = cache.values().map(|e| e.end).max().unwrap_or(i64::MIN);
        self.shared.max_cached_end.store(new_max, Ordering::Release);
    }

    /// Retention advanced to `horizon`: any cached window that depends on
    /// data at or before the horizon — including windows *spanning* it —
    /// may now disagree with storage.
    pub(crate) fn note_retention(&self, horizon: Timestamp) {
        let mut cache = self.shared.cache.lock();
        cache.retain(|_, e| e.data_start >= horizon);
        let new_max = cache.values().map(|e| e.end).max().unwrap_or(i64::MIN);
        self.shared.max_cached_end.store(new_max, Ordering::Release);
    }

    /// The compactor deduplicated replayed chunks spanning
    /// `[min_ts, max_ts]`: cached results over that window counted the
    /// duplicate's entries and now disagree with storage. Merging alone
    /// never triggers this — it preserves query results exactly — only
    /// dedup does.
    pub(crate) fn note_compaction(&self, min_ts: Timestamp, max_ts: Timestamp) {
        let mut cache = self.shared.cache.lock();
        cache.retain(|_, e| e.end < min_ts || e.data_start > max_ts);
        let new_max = cache.values().map(|e| e.end).max().unwrap_or(i64::MIN);
        self.shared.max_cached_end.store(new_max, Ordering::Release);
    }

    /// Drop every cached result. Called on shard crash/recovery (WAL
    /// replay writes straight into the ingester, bypassing the append
    /// hooks); public as an operator escape hatch and so benchmarks can
    /// re-measure cold-cache latency without rebuilding the cluster.
    pub fn invalidate_all(&self) {
        self.shared.cache.lock().clear();
        self.shared.max_cached_end.store(i64::MIN, Ordering::Release);
    }

    fn reject(&self, v: LimitViolation) -> QueryError {
        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
        QueryError::LimitExceeded(v)
    }

    /// Arrival time plus the configured budget (virtual clock).
    fn deadline(&self) -> Timestamp {
        self.clock.now().saturating_add(self.limits.query_timeout_ns)
    }

    fn check_deadline(&self, deadline: Timestamp) -> Result<(), QueryError> {
        let now = self.clock.now();
        if now >= deadline {
            return Err(self.reject(LimitViolation::Deadline { deadline, now }));
        }
        Ok(())
    }

    fn check_bytes(&self, budget: usize, fresh_bytes: usize) -> Result<(), QueryError> {
        if fresh_bytes > budget {
            return Err(
                self.reject(LimitViolation::BytesScanned { limit: budget, scanned: fresh_bytes })
            );
        }
        Ok(())
    }

    /// Fair-scheduler observability: total grants and per-tenant peak
    /// queue waits (in grant rounds).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.shared.scheduler.stats()
    }

    /// Peak grant-round wait one tenant's splits have seen.
    pub fn max_wait_rounds(&self, tenant: &TenantId) -> u64 {
        self.shared.scheduler.max_wait_rounds(tenant)
    }

    /// Drain the per-split scheduler queue-wait samples (tenant,
    /// virtual nanoseconds) accumulated since the last call.
    pub fn take_scheduler_waits(&self) -> Vec<(TenantId, u64)> {
        self.shared.scheduler.take_waits()
    }

    /// Split, cache, and limit a log query over `(start, end]` as the
    /// anonymous tenant under the cluster-wide limits.
    #[allow(clippy::too_many_arguments)]
    pub fn run_log_query(
        &self,
        shards: &[Arc<Ingester>],
        text: &str,
        query: &LogQuery,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
        direction: Direction,
    ) -> Result<(Vec<LogRecord>, QueryStats), QueryError> {
        let ctx = QueryContext::anonymous(&self.limits);
        self.run_log_query_ctx(shards, &ctx, text, query, start, end, limit, direction)
    }

    /// Split, cache, and limit a log query over `(start, end]` for the
    /// tenant in `ctx`. `text` is the original query string (the cache
    /// key); `query` its parsed form. Results are merged in `direction`
    /// order and truncated to `limit` — byte-identical to an unsplit
    /// [`engine::run_log_query_with_stats`] call.
    #[allow(clippy::too_many_arguments)]
    pub fn run_log_query_ctx(
        &self,
        shards: &[Arc<Ingester>],
        ctx: &QueryContext,
        text: &str,
        query: &LogQuery,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
        direction: Direction,
    ) -> Result<(Vec<LogRecord>, QueryStats), QueryError> {
        self.run_log_query_report(shards, ctx, text, query, start, end, limit, direction)
            .map(|(records, report)| (records, report.stats))
    }

    /// [`Self::run_log_query_ctx`] returning the full [`QueryReport`]:
    /// the merged statistics plus the per-split breakdown (window,
    /// cache hit or miss, scan statistics, scheduler queue wait).
    #[allow(clippy::too_many_arguments)]
    pub fn run_log_query_report(
        &self,
        shards: &[Arc<Ingester>],
        ctx: &QueryContext,
        text: &str,
        query: &LogQuery,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
        direction: Direction,
    ) -> Result<(Vec<LogRecord>, QueryReport), QueryError> {
        if limit > ctx.max_entries_per_query {
            return Err(self.reject(LimitViolation::Entries {
                limit: ctx.max_entries_per_query,
                requested: limit,
            }));
        }
        let deadline = self.deadline();
        self.check_deadline(deadline)?;

        let bounds = split_bounds(start, end, self.limits.split_interval_ns);
        self.shared.splits.fetch_add(bounds.len() as u64, Ordering::Relaxed);
        let norm = normalize_query(text);
        let key = |s: Timestamp, e: Timestamp| CacheKey {
            tenant: ctx.tenant.clone(),
            query: norm.clone(),
            start: s,
            end: e,
            step_ns: 0,
            limit,
            direction,
        };

        // Resolve each split from the cache; misses collect for a
        // parallel pass.
        let mut parts: Vec<Option<(Vec<LogRecord>, SplitStat)>> = Vec::with_capacity(bounds.len());
        let mut todo: Vec<(usize, Timestamp, Timestamp)> = Vec::new();
        {
            let cache = self.shared.cache.lock();
            let mut saved = self.shared.bytes_saved.lock();
            for (i, &(s, e)) in bounds.iter().enumerate() {
                match cache.get(&key(s, e)) {
                    Some(entry) => {
                        let CachedData::Logs(records) = &entry.data else {
                            parts.push(None);
                            todo.push((i, s, e));
                            continue;
                        };
                        saved.push(entry.stats.bytes_scanned as u64);
                        parts.push(Some((
                            records.clone(),
                            SplitStat {
                                start: s,
                                end: e,
                                cached: true,
                                stats: entry.stats,
                                queue_wait_vns: 0,
                            },
                        )));
                    }
                    None => {
                        parts.push(None);
                        todo.push((i, s, e));
                    }
                }
            }
        }
        self.shared.hits.fetch_add((bounds.len() - todo.len()) as u64, Ordering::Relaxed);
        self.shared.misses.fetch_add(todo.len() as u64, Ordering::Relaxed);

        // Each split keeps its own direction-ordered top-`limit`; the
        // global top-`limit` is a prefix of their concatenation, so the
        // per-split limit loses nothing.
        let executed = run_parallel(&self.shared.scheduler, ctx, &todo, |s, e| {
            engine::run_log_query_with_stats(shards, query, s, e, limit, direction)
        });
        self.check_bytes(
            ctx.max_bytes_scanned,
            executed.iter().map(|(_, _, _, ((_, st), _))| st.bytes_scanned).sum(),
        )?;
        self.check_deadline(deadline)?;

        {
            let mut cache = self.shared.cache.lock();
            for (i, s, e, ((records, stats), wait_vns)) in executed {
                if cache.len() >= CACHE_MAX {
                    cache.clear();
                }
                cache.insert(
                    key(s, e),
                    CacheEntry {
                        data: CachedData::Logs(records.clone()),
                        stats,
                        data_start: s,
                        end: e,
                    },
                );
                self.shared.max_cached_end.fetch_max(e, Ordering::AcqRel);
                parts[i] = Some((
                    records,
                    SplitStat { start: s, end: e, cached: false, stats, queue_wait_vns: wait_vns },
                ));
            }
        }

        // Splits cover disjoint ascending windows, and each is sorted in
        // `direction` order internally — concatenating them (newest
        // split first for backward) reproduces the global sort exactly.
        let resolved: Vec<(Vec<LogRecord>, SplitStat)> = parts.into_iter().flatten().collect();
        let splits: Vec<SplitStat> = resolved.iter().map(|(_, sp)| *sp).collect();
        let ordered: Vec<(Vec<LogRecord>, SplitStat)> = match direction {
            Direction::Forward => resolved,
            Direction::Backward => {
                let mut v = resolved;
                v.reverse();
                v
            }
        };
        let mut merged = QueryStats::default();
        let mut records = Vec::new();
        for (part, split) in ordered {
            merged.absorb(split.stats);
            records.extend(part);
        }
        records.truncate(limit);
        merged.entries_returned = records.len();
        let report = QueryReport::from_splits(merged, splits);
        self.record_query(ctx, &norm, start, end, &report);
        Ok((records, report))
    }

    /// Split, cache, and limit a metric range query. The step grid is
    /// partitioned into runs of steps sharing an aligned interval; each
    /// run is an independent sub-query whose samples concatenate (per
    /// series, ascending) into exactly what an unsplit
    /// [`engine::run_range_query_with_stats`] call produces, because
    /// every step is evaluated independently over its own lookback.
    pub fn run_range_query(
        &self,
        shards: &[Arc<Ingester>],
        text: &str,
        query: &MetricQuery,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<(Matrix, QueryStats), QueryError> {
        let ctx = QueryContext::anonymous(&self.limits);
        self.run_range_query_ctx(shards, &ctx, text, query, start, end, step_ns)
    }

    /// [`Self::run_range_query`] for the tenant in `ctx`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_range_query_ctx(
        &self,
        shards: &[Arc<Ingester>],
        ctx: &QueryContext,
        text: &str,
        query: &MetricQuery,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<(Matrix, QueryStats), QueryError> {
        self.run_range_query_report(shards, ctx, text, query, start, end, step_ns)
            .map(|(matrix, report)| (matrix, report.stats))
    }

    /// [`Self::run_range_query_ctx`] returning the full [`QueryReport`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_range_query_report(
        &self,
        shards: &[Arc<Ingester>],
        ctx: &QueryContext,
        text: &str,
        query: &MetricQuery,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<(Matrix, QueryReport), QueryError> {
        let deadline = self.deadline();
        self.check_deadline(deadline)?;

        let groups = range_groups(start, end, step_ns, self.limits.split_interval_ns);
        self.shared.splits.fetch_add(groups.len() as u64, Ordering::Relaxed);
        let norm = normalize_query(text);
        let range_ns = query.range_ns();
        let key = |s: Timestamp, e: Timestamp| CacheKey {
            tenant: ctx.tenant.clone(),
            query: norm.clone(),
            start: s,
            end: e,
            step_ns,
            limit: usize::MAX,
            direction: Direction::Forward,
        };

        let mut parts: Vec<Option<(Matrix, SplitStat)>> = Vec::with_capacity(groups.len());
        let mut todo: Vec<(usize, Timestamp, Timestamp)> = Vec::new();
        {
            let cache = self.shared.cache.lock();
            let mut saved = self.shared.bytes_saved.lock();
            for (i, &(s, e)) in groups.iter().enumerate() {
                match cache.get(&key(s, e)) {
                    Some(entry) => {
                        let CachedData::Series(matrix) = &entry.data else {
                            parts.push(None);
                            todo.push((i, s, e));
                            continue;
                        };
                        saved.push(entry.stats.bytes_scanned as u64);
                        parts.push(Some((
                            matrix.clone(),
                            SplitStat {
                                start: s,
                                end: e,
                                cached: true,
                                stats: entry.stats,
                                queue_wait_vns: 0,
                            },
                        )));
                    }
                    None => {
                        parts.push(None);
                        todo.push((i, s, e));
                    }
                }
            }
        }
        self.shared.hits.fetch_add((groups.len() - todo.len()) as u64, Ordering::Relaxed);
        self.shared.misses.fetch_add(todo.len() as u64, Ordering::Relaxed);

        let executed = run_parallel(&self.shared.scheduler, ctx, &todo, |s, e| {
            engine::run_range_query_with_stats(shards, query, s, e, step_ns)
        });
        self.check_bytes(
            ctx.max_bytes_scanned,
            executed.iter().map(|(_, _, _, ((_, st), _))| st.bytes_scanned).sum(),
        )?;
        self.check_deadline(deadline)?;

        {
            let mut cache = self.shared.cache.lock();
            for (i, s, e, ((matrix, stats), wait_vns)) in executed {
                if cache.len() >= CACHE_MAX {
                    cache.clear();
                }
                cache.insert(
                    key(s, e),
                    CacheEntry {
                        data: CachedData::Series(matrix.clone()),
                        stats,
                        // The first step's lookback reaches `range`
                        // behind the group start.
                        data_start: s.saturating_sub(range_ns),
                        end: e,
                    },
                );
                self.shared.max_cached_end.fetch_max(e, Ordering::AcqRel);
                parts[i] = Some((
                    matrix,
                    SplitStat { start: s, end: e, cached: false, stats, queue_wait_vns: wait_vns },
                ));
            }
        }

        // Groups are ascending and disjoint on the step grid; appending
        // per-series samples in group order reproduces the unsplit
        // evaluation's ascending sample vectors.
        let resolved: Vec<(Matrix, SplitStat)> = parts.into_iter().flatten().collect();
        let splits: Vec<SplitStat> = resolved.iter().map(|(_, sp)| *sp).collect();
        let mut merged = QueryStats::default();
        let mut series: BTreeMap<LabelSet, Vec<Sample>> = BTreeMap::new();
        for (matrix, split) in resolved {
            merged.absorb(split.stats);
            for (labels, samples) in matrix {
                series.entry(labels).or_default().extend(samples);
            }
        }
        let report = QueryReport::from_splits(merged, splits);
        self.record_query(ctx, &norm, start, end, &report);
        Ok((series.into_iter().collect(), report))
    }

    /// Evaluate a metric query at one instant, under the per-query
    /// limits. Instant queries are not split or cached (every ruler
    /// evaluation uses a fresh `now`, so cache entries would never be
    /// reused before an append invalidated them).
    pub fn run_instant_query(
        &self,
        shards: &[Arc<Ingester>],
        query: &MetricQuery,
        at: Timestamp,
    ) -> Result<(InstantVector, QueryStats), QueryError> {
        let ctx = QueryContext::anonymous(&self.limits);
        self.run_instant_query_ctx(shards, &ctx, query, at)
    }

    /// [`Self::run_instant_query`] for the tenant in `ctx`.
    pub fn run_instant_query_ctx(
        &self,
        shards: &[Arc<Ingester>],
        ctx: &QueryContext,
        query: &MetricQuery,
        at: Timestamp,
    ) -> Result<(InstantVector, QueryStats), QueryError> {
        self.run_instant_query_report(shards, ctx, query, at)
            .map(|(vector, report)| (vector, report.stats))
    }

    /// [`Self::run_instant_query_ctx`] returning the full
    /// [`QueryReport`]: one uncached "split" covering the instant's
    /// lookback, with its scheduler queue wait. Instant evaluations are
    /// not pushed into the query-record buffer — every ruler tick would
    /// flood it with identical rule evaluations.
    pub fn run_instant_query_report(
        &self,
        shards: &[Arc<Ingester>],
        ctx: &QueryContext,
        query: &MetricQuery,
        at: Timestamp,
    ) -> Result<(InstantVector, QueryReport), QueryError> {
        let deadline = self.deadline();
        self.check_deadline(deadline)?;
        // Instant evaluations contend for the same pool as splits, so
        // they are scheduled (and their waits bounded) the same way.
        let ((vector, stats), wait_vns) =
            self.shared.scheduler.run_timed(&ctx.tenant, ctx.weight, || {
                engine::run_instant_query_with_stats(shards, query, at)
            });
        self.check_bytes(ctx.max_bytes_scanned, stats.bytes_scanned)?;
        let splits = vec![SplitStat {
            start: at.saturating_sub(query.range_ns()),
            end: at,
            cached: false,
            stats,
            queue_wait_vns: wait_vns,
        }];
        Ok((vector, QueryReport::from_splits(stats, splits)))
    }
}

/// Run `f` over every `(index, start, end)` work item, in parallel when
/// there is more than one (the splits fan out exactly like the engine's
/// shard scans: scoped threads, panics propagated). Every split —
/// including the single-split fast path — passes through the fair
/// scheduler, so a tenant's fan-out is metered against its virtual
/// time; each result carries the virtual nanoseconds its split queued.
///
/// The whole batch reserves its tickets *before* any split runs: each
/// split's queue wait is then a pure function of its position on the
/// WFQ virtual-time axis, independent of thread interleaving, keeping
/// query reports deterministic across runs.
fn run_parallel<T: Send>(
    sched: &FairScheduler,
    ctx: &QueryContext,
    todo: &[(usize, Timestamp, Timestamp)],
    f: impl Fn(Timestamp, Timestamp) -> T + Sync,
) -> Vec<(usize, Timestamp, Timestamp, (T, u64))> {
    let f = &f;
    match todo {
        [] => Vec::new(),
        [(i, s, e)] => vec![(*i, *s, *e, sched.run_timed(&ctx.tenant, ctx.weight, || f(*s, *e)))],
        many => {
            let tickets: Vec<u64> =
                many.iter().map(|_| sched.ticket(&ctx.tenant, ctx.weight)).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = many
                    .iter()
                    .zip(tickets)
                    .map(|(&(i, s, e), ticket)| {
                        scope.spawn(move || (i, s, e, sched.run_ticket(ticket, || f(s, e))))
                    })
                    .collect();
                handles
                    .into_iter()
                    // As in `engine::gather`: a panicking split would yield a
                    // silently partial result, so propagate it.
                    .map(|h| h.join().expect("split scan panicked")) // lint:allow(no-unwrap)
                    .collect()
            })
        }
    }
}

/// Collapse whitespace outside string literals so textual variants of
/// one query share a cache entry without any semantic risk.
fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string: Option<char> = None;
    let mut escaped = false;
    let mut pending_space = false;
    for ch in text.chars() {
        if let Some(delim) = in_string {
            out.push(ch);
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == delim {
                in_string = None;
            }
        } else if ch.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(ch);
            if ch == '"' || ch == '`' {
                in_string = Some(ch);
            }
        }
    }
    out
}

/// Chop `(start, end]` at absolute multiples of `interval`. The
/// alignment is what makes caching work: tomorrow's refresh of "last 6
/// hours" shares every boundary with today's except the live tail.
fn split_bounds(start: Timestamp, end: Timestamp, interval: i64) -> Vec<(Timestamp, Timestamp)> {
    if interval <= 0 || start >= end {
        return vec![(start, end)];
    }
    let span = end.saturating_sub(start);
    if span == i64::MAX || (span / interval) as usize >= MAX_SPLITS {
        return vec![(start, end)];
    }
    let mut out = Vec::new();
    let mut s = start;
    while s < end {
        // The next absolute boundary strictly after `s`.
        let e = s
            .div_euclid(interval)
            .checked_add(1)
            .and_then(|q| q.checked_mul(interval))
            .map_or(end, |b| b.min(end));
        out.push((s, e));
        s = e;
    }
    out
}

/// Partition the range-query step grid `start, start+step, ..` (while
/// `<= end`) into maximal runs of steps whose timestamps share an
/// aligned `interval` bucket. Returns `(first_step, last_step)` per run;
/// degenerate shapes (no splitting configured, sentinel-wide spans, too
/// many steps or runs) collapse to the unsplit single run.
fn range_groups(
    start: Timestamp,
    end: Timestamp,
    step_ns: i64,
    interval: i64,
) -> Vec<(Timestamp, Timestamp)> {
    if interval <= 0 || step_ns <= 0 || start > end {
        return vec![(start, end)];
    }
    let span = end.saturating_sub(start);
    if span == i64::MAX || (span / interval) as usize >= MAX_SPLITS {
        return vec![(start, end)];
    }
    let mut out: Vec<(i64, Timestamp, Timestamp)> = Vec::new();
    let mut t = start;
    while t <= end {
        let bucket = t.div_euclid(interval);
        match out.last_mut() {
            Some((b, _, last)) if *b == bucket => *last = t,
            _ => out.push((bucket, t, t)),
        }
        t = match t.checked_add(step_ns) {
            Some(next) => next,
            None => break,
        };
    }
    if out.is_empty() {
        return vec![(start, end)];
    }
    out.into_iter().map(|(_, s, e)| (s, e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_outside_strings() {
        assert_eq!(
            normalize_query("  {app = \"x  y\"}   |=  \"a b\" "),
            "{app = \"x  y\"} |= \"a b\""
        );
        assert_eq!(normalize_query("sum(rate({a=\"b\"}[5m]))"), "sum(rate({a=\"b\"}[5m]))");
        // Escaped quotes do not end the literal.
        assert_eq!(normalize_query(r#"{a="x\"  y"}  "#), r#"{a="x\"  y"}"#);
    }

    #[test]
    fn split_bounds_align_to_absolute_boundaries() {
        // Window (250, 950] with interval 300 → boundaries at 300, 600, 900.
        assert_eq!(
            split_bounds(250, 950, 300),
            vec![(250, 300), (300, 600), (600, 900), (900, 950)]
        );
        // Aligned start produces whole intervals.
        assert_eq!(split_bounds(300, 900, 300), vec![(300, 600), (600, 900)]);
        // Negative timestamps align the same way (floor division).
        assert_eq!(split_bounds(-450, -50, 300), vec![(-450, -300), (-300, -50)]);
        // No interval, empty window: unsplit.
        assert_eq!(split_bounds(0, 100, 0), vec![(0, 100)]);
        assert_eq!(split_bounds(100, 100, 10), vec![(100, 100)]);
    }

    #[test]
    fn sentinel_spans_do_not_split() {
        assert_eq!(split_bounds(i64::MIN, 1_000, 300), vec![(i64::MIN, 1_000)]);
        assert_eq!(split_bounds(0, i64::MAX, 300), vec![(0, i64::MAX)]);
        assert_eq!(range_groups(i64::MIN, 1_000, 100, 300), vec![(i64::MIN, 1_000)]);
    }

    #[test]
    fn range_groups_cover_the_step_grid_exactly() {
        // Steps 0,100,...,900 with interval 300: buckets [0,300) [300,600)...
        let groups = range_groups(0, 900, 100, 300);
        assert_eq!(groups, vec![(0, 200), (300, 500), (600, 800), (900, 900)]);
        // The union of group grids is the original grid.
        let mut all = Vec::new();
        for (s, e) in &groups {
            let mut t = *s;
            while t <= *e {
                all.push(t);
                t += 100;
            }
        }
        assert_eq!(all, (0..=9).map(|k| k * 100).collect::<Vec<_>>());
    }
}

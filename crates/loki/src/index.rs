//! The label index: "Loki indexes the timestamp and labels only" (§IV-A).
//!
//! An inverted index from `(label, value)` to stream fingerprints. Only
//! label metadata is indexed — never line content; that asymmetry against
//! full-text stores is experiment C4.

use omni_model::LabelSet;
use std::collections::{BTreeMap, BTreeSet};

/// Inverted label index for one ingester shard.
#[derive(Debug, Default)]
pub struct LabelIndex {
    /// (name, value) → fingerprints.
    postings: BTreeMap<(String, String), BTreeSet<u64>>,
    /// All fingerprints (for matchers that can't use postings).
    all: BTreeSet<u64>,
}

impl LabelIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a stream's labels under its fingerprint.
    pub fn insert(&mut self, labels: &LabelSet, fingerprint: u64) {
        for (k, v) in labels.iter() {
            self.postings.entry((k.to_string(), v.to_string())).or_default().insert(fingerprint);
        }
        self.all.insert(fingerprint);
    }

    /// Remove a stream.
    pub fn remove(&mut self, labels: &LabelSet, fingerprint: u64) {
        for (k, v) in labels.iter() {
            if let Some(set) = self.postings.get_mut(&(k.to_string(), v.to_string())) {
                set.remove(&fingerprint);
                if set.is_empty() {
                    self.postings.remove(&(k.to_string(), v.to_string()));
                }
            }
        }
        self.all.remove(&fingerprint);
    }

    /// Candidate fingerprints for a set of equality constraints: the
    /// intersection of their postings. With no constraints, all streams.
    pub fn candidates<'a>(&self, equalities: impl Iterator<Item = (&'a str, &'a str)>) -> Vec<u64> {
        let mut result: Option<BTreeSet<u64>> = None;
        for (name, value) in equalities {
            let set = self
                .postings
                .get(&(name.to_string(), value.to_string()))
                .cloned()
                .unwrap_or_default();
            result = Some(match result {
                None => set,
                Some(prev) => prev.intersection(&set).copied().collect(),
            });
            if result.as_ref().is_some_and(|s| s.is_empty()) {
                return Vec::new();
            }
        }
        match result {
            Some(set) => set.into_iter().collect(),
            None => self.all.iter().copied().collect(),
        }
    }

    /// All values seen for a label name (Grafana's label browser).
    pub fn label_values(&self, name: &str) -> Vec<String> {
        self.postings
            .range((name.to_string(), String::new())..)
            .take_while(|((k, _), _)| k == name)
            .map(|((_, v), _)| v.clone())
            .collect()
    }

    /// All label names present.
    pub fn label_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.postings.keys().map(|(k, _)| k.clone()).collect();
        names.dedup();
        names
    }

    /// Number of index entries (postings keys) — the "small index" the
    /// paper contrasts with full-text indexing.
    pub fn entry_count(&self) -> usize {
        self.postings.len()
    }

    /// Approximate memory footprint of the index in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|((k, v), set)| k.len() + v.len() + set.len() * std::mem::size_of::<u64>())
            .sum()
    }

    /// Number of indexed streams.
    pub fn stream_count(&self) -> usize {
        self.all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn insert_and_lookup() {
        let mut idx = LabelIndex::new();
        let a = labels!("app" => "fm", "cluster" => "perlmutter");
        let b = labels!("app" => "loki", "cluster" => "perlmutter");
        idx.insert(&a, 1);
        idx.insert(&b, 2);
        assert_eq!(idx.candidates([("app", "fm")].into_iter()), vec![1]);
        assert_eq!(idx.candidates([("cluster", "perlmutter")].into_iter()), vec![1, 2]);
        assert_eq!(idx.candidates([("app", "fm"), ("cluster", "perlmutter")].into_iter()), vec![1]);
        assert!(idx.candidates([("app", "nope")].into_iter()).is_empty());
    }

    #[test]
    fn no_constraints_returns_all() {
        let mut idx = LabelIndex::new();
        idx.insert(&labels!("a" => "1"), 7);
        idx.insert(&labels!("b" => "2"), 8);
        assert_eq!(idx.candidates(std::iter::empty()), vec![7, 8]);
    }

    #[test]
    fn remove_cleans_postings() {
        let mut idx = LabelIndex::new();
        let l = labels!("app" => "fm");
        idx.insert(&l, 1);
        idx.remove(&l, 1);
        assert!(idx.candidates([("app", "fm")].into_iter()).is_empty());
        assert_eq!(idx.entry_count(), 0);
        assert_eq!(idx.stream_count(), 0);
    }

    #[test]
    fn label_values_and_names() {
        let mut idx = LabelIndex::new();
        idx.insert(&labels!("app" => "fm", "env" => "prod"), 1);
        idx.insert(&labels!("app" => "loki"), 2);
        assert_eq!(idx.label_values("app"), vec!["fm", "loki"]);
        assert_eq!(idx.label_names(), vec!["app", "env"]);
        assert!(idx.label_values("nope").is_empty());
    }

    #[test]
    fn entry_count_tracks_cardinality() {
        let mut idx = LabelIndex::new();
        for i in 0..100 {
            idx.insert(&labels!("id" => format!("{i}")), i);
        }
        // 100 distinct values -> 100 postings entries.
        assert_eq!(idx.entry_count(), 100);
        assert!(idx.approx_bytes() > 0);
    }
}

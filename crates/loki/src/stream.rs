//! One log stream: "If logs share the same combination of unique labels,
//! they are called a log stream. Each log stream fills a separate chunk."

use crate::chunk::{DecodeStats, HeadChunk, SealedChunk};
use crate::limits::Limits;
use omni_model::{LabelSet, LogEntry, Timestamp};

/// Per-stream read cost of one range query: which chunks were touched and
/// what the block index saved inside them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Sealed chunks whose time span overlapped the query window.
    pub chunks_touched: usize,
    /// Of those, chunks served from the cold (compacted) object tier,
    /// which carries a simulated remote-GET latency per object.
    pub cold_chunks_touched: usize,
    /// Block-level decode cost inside those chunks.
    pub decode: DecodeStats,
}

impl ReadStats {
    /// Fold another read's stats into this one.
    pub fn absorb(&mut self, other: ReadStats) {
        self.chunks_touched += other.chunks_touched;
        self.cold_chunks_touched += other.cold_chunks_touched;
        self.decode.absorb(other.decode);
    }
}

/// Why an append was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendError {
    /// Entry is older than the stream's ordering window allows.
    OutOfOrder {
        /// The rejected entry's timestamp.
        entry_ts: Timestamp,
        /// The newest accepted timestamp.
        newest_ts: Timestamp,
    },
    /// Line exceeds `max_line_size`.
    LineTooLong(usize),
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::OutOfOrder { entry_ts, newest_ts } => {
                write!(f, "entry at {entry_ts} out of order (newest {newest_ts})")
            }
            AppendError::LineTooLong(n) => write!(f, "line of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for AppendError {}

/// A stream: labels + open head chunk + sealed chunks.
#[derive(Debug)]
pub struct Stream {
    /// The stream identity.
    pub labels: LabelSet,
    head: HeadChunk,
    chunks: Vec<SealedChunk>,
    newest_ts: Timestamp,
    total_entries: u64,
    total_bytes: u64,
}

impl Stream {
    /// New empty stream.
    pub fn new(labels: LabelSet) -> Self {
        Self {
            labels,
            head: HeadChunk::new(),
            chunks: Vec::new(),
            newest_ts: i64::MIN,
            total_entries: 0,
            total_bytes: 0,
        }
    }

    /// Append one entry, enforcing ordering and line-size limits and
    /// cutting the head chunk per policy. Returns `true` when the append
    /// sealed a chunk.
    pub fn append(&mut self, entry: LogEntry, limits: &Limits) -> Result<bool, AppendError> {
        if entry.line.len() > limits.max_line_size {
            return Err(AppendError::LineTooLong(entry.line.len()));
        }
        if entry.ts < self.newest_ts.saturating_sub(limits.out_of_order_tolerance_ns) {
            return Err(AppendError::OutOfOrder { entry_ts: entry.ts, newest_ts: self.newest_ts });
        }
        // Within the tolerance window entries may arrive slightly late;
        // clamp into order for the head chunk (Loki 2.4 rejects instead
        // when the window is 0).
        let ts = entry.ts.max(self.head.max_ts().unwrap_or(i64::MIN));
        self.newest_ts = self.newest_ts.max(entry.ts);
        self.total_entries += 1;
        self.total_bytes += entry.line.len() as u64;
        self.head.append(LogEntry { ts, line: entry.line });

        let mut sealed = false;
        if self.head.bytes() >= limits.chunk_target_bytes {
            self.seal_head();
            sealed = true;
        }
        Ok(sealed)
    }

    /// Seal the head chunk if it has outlived `chunk_max_age_ns` relative
    /// to `now`. Returns `true` if a chunk was cut.
    pub fn maybe_seal_by_age(&mut self, now: Timestamp, limits: &Limits) -> bool {
        if let Some(min_ts) = self.head.min_ts() {
            if now - min_ts >= limits.chunk_max_age_ns {
                self.seal_head();
                return true;
            }
        }
        false
    }

    fn seal_head(&mut self) {
        if !self.head.is_empty() {
            self.chunks.push(self.head.seal());
        }
    }

    /// Force-seal (used on shutdown/flush).
    pub fn flush(&mut self) {
        self.seal_head();
    }

    /// Entries in `(start, end]` across sealed chunks and the head.
    pub fn entries_in(&self, start: Timestamp, end: Timestamp) -> Vec<LogEntry> {
        self.entries_in_stats(start, end).0
    }

    /// [`Self::entries_in`] that also reports the read cost: chunks
    /// touched and blocks decoded vs. skipped inside them.
    pub fn entries_in_stats(&self, start: Timestamp, end: Timestamp) -> (Vec<LogEntry>, ReadStats) {
        let mut out = Vec::new();
        let mut stats = ReadStats::default();
        for c in &self.chunks {
            if c.overlaps(start, end) {
                stats.chunks_touched += 1;
                if let Ok((mut es, ds)) = c.decode_range_stats(start, end) {
                    stats.decode.absorb(ds);
                    out.append(&mut es);
                }
            }
        }
        out.extend(self.head.entries_in(start, end));
        (out, stats)
    }

    /// Sealed chunk count.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len() + usize::from(!self.head.is_empty())
    }

    /// Sealed chunks view (for size accounting).
    pub fn sealed_chunks(&self) -> &[SealedChunk] {
        &self.chunks
    }

    /// Total entries ever appended.
    pub fn total_entries(&self) -> u64 {
        self.total_entries
    }

    /// Total line bytes ever appended.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Newest accepted timestamp.
    pub fn newest_ts(&self) -> Timestamp {
        self.newest_ts
    }

    /// Remove and return sealed chunks entirely older than `horizon`
    /// (the memory → disk offload path).
    pub fn drain_chunks_before(&mut self, horizon: Timestamp) -> Vec<SealedChunk> {
        let mut drained = Vec::new();
        self.chunks.retain(|c| {
            if c.max_ts < horizon {
                drained.push(c.clone());
                false
            } else {
                true
            }
        });
        drained
    }

    /// Drop chunks entirely older than `horizon` (whole-chunk
    /// granularity, exactly like the disk tier's `delete_before`): a
    /// sealed chunk — or the unsealed head — is removed iff its
    /// `max_ts < horizon`, and kept whole when it spans the boundary.
    /// Returns chunks dropped.
    pub fn enforce_retention(&mut self, horizon: Timestamp) -> usize {
        let before = self.chunks.len();
        self.chunks.retain(|c| c.max_ts >= horizon);
        let mut dropped = before - self.chunks.len();
        // The head chunk must expire on the same predicate, or data that
        // never sealed (quiet streams) would outlive retention in the
        // memory tier while its flushed twin on disk is deleted.
        if matches!(self.head.max_ts(), Some(max) if max < horizon) {
            self.head = HeadChunk::new();
            dropped += 1;
        }
        dropped
    }

    /// Whether the stream holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty() && self.head.is_empty()
    }

    /// Oldest timestamp still held in memory (head or sealed-but-not-yet
    /// offloaded chunks) — the WAL must keep everything from here on, since
    /// a crash would lose it.
    pub fn oldest_ts_in_memory(&self) -> Option<Timestamp> {
        let chunk_min = self.chunks.iter().map(|c| c.min_ts).min();
        match (self.head.min_ts(), chunk_min) {
            (Some(h), Some(c)) => Some(h.min(c)),
            (h, c) => h.or(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    fn stream() -> Stream {
        Stream::new(labels!("app" => "test"))
    }

    #[test]
    fn append_and_query() {
        let mut s = stream();
        let limits = Limits::default();
        for i in 0..10 {
            s.append(LogEntry::new(i * 100, format!("l{i}")), &limits).unwrap();
        }
        let es = s.entries_in(100, 500);
        assert_eq!(es.len(), 4); // 200,300,400,500
        assert_eq!(s.total_entries(), 10);
    }

    #[test]
    fn out_of_order_rejected_with_zero_tolerance() {
        let mut s = stream();
        let limits = Limits::default();
        s.append(LogEntry::new(1000, "a"), &limits).unwrap();
        let err = s.append(LogEntry::new(500, "b"), &limits).unwrap_err();
        assert!(matches!(err, AppendError::OutOfOrder { entry_ts: 500, newest_ts: 1000 }));
    }

    #[test]
    fn tolerance_window_accepts_slightly_late() {
        let mut s = stream();
        let limits = Limits { out_of_order_tolerance_ns: 600, ..Default::default() };
        s.append(LogEntry::new(1000, "a"), &limits).unwrap();
        s.append(LogEntry::new(500, "late"), &limits).unwrap();
        // Clamped into order; both retrievable.
        assert_eq!(s.entries_in(0, 2000).len(), 2);
        let err = s.append(LogEntry::new(100, "too late"), &limits);
        assert!(err.is_err());
    }

    #[test]
    fn line_size_limit() {
        let mut s = stream();
        let limits = Limits { max_line_size: 10, ..Default::default() };
        assert!(matches!(
            s.append(LogEntry::new(1, "x".repeat(11)), &limits),
            Err(AppendError::LineTooLong(11))
        ));
    }

    #[test]
    fn chunk_cut_on_bytes() {
        let mut s = stream();
        let limits = Limits { chunk_target_bytes: 100, ..Default::default() };
        let mut seals = 0;
        for i in 0..100 {
            if s.append(LogEntry::new(i, "0123456789"), &limits).unwrap() {
                seals += 1;
            }
        }
        assert!(seals >= 9, "sealed {seals} chunks");
        assert!(s.sealed_chunks().len() >= 9);
        // All entries still queryable across chunk boundaries.
        assert_eq!(s.entries_in(-1, 1000).len(), 100);
    }

    #[test]
    fn chunk_cut_on_age() {
        let mut s = stream();
        let limits = Limits { chunk_max_age_ns: 1_000, ..Default::default() };
        s.append(LogEntry::new(0, "old"), &limits).unwrap();
        assert!(!s.maybe_seal_by_age(500, &limits));
        assert!(s.maybe_seal_by_age(1_500, &limits));
        assert_eq!(s.sealed_chunks().len(), 1);
    }

    #[test]
    fn retention_drops_old_chunks() {
        let mut s = stream();
        let limits = Limits { chunk_target_bytes: 10, ..Default::default() };
        for i in 0..10 {
            s.append(LogEntry::new(i * 100, "0123456789ab"), &limits).unwrap();
        }
        let total_chunks = s.sealed_chunks().len();
        let dropped = s.enforce_retention(500);
        assert!(dropped > 0);
        assert!(s.sealed_chunks().len() < total_chunks);
        // Remaining data is only the newer half.
        assert!(s.entries_in(-1, 10_000).iter().all(|e| e.ts >= 400));
    }

    #[test]
    fn retention_drops_expired_head_chunk() {
        // Regression: the memory tier only expired *sealed* chunks, so
        // unsealed head data older than the horizon survived retention
        // while the same workload flushed to the disk tier was deleted.
        let mut s = stream();
        let limits = Limits::default(); // large target: data stays in the head
        s.append(LogEntry::new(100, "stale head data"), &limits).unwrap();
        assert_eq!(s.enforce_retention(1_000), 1);
        assert!(s.is_empty());
        assert!(s.entries_in(-1, 10_000).is_empty());

        // A head spanning the horizon is kept whole (chunk granularity),
        // matching the sealed and disk tiers.
        s.append(LogEntry::new(2_000, "a"), &limits).unwrap();
        s.append(LogEntry::new(4_000, "b"), &limits).unwrap();
        assert_eq!(s.enforce_retention(3_000), 0);
        assert_eq!(s.entries_in(-1, 10_000).len(), 2);
    }

    #[test]
    fn flush_seals_head() {
        let mut s = stream();
        s.append(LogEntry::new(1, "x"), &Limits::default()).unwrap();
        assert_eq!(s.sealed_chunks().len(), 0);
        s.flush();
        assert_eq!(s.sealed_chunks().len(), 1);
    }
}

//! Per-tenant limits and chunk-cutting policy.
//!
//! The paper's §IV-A design discussion — "the overuse of labels will
//! create a huge amount of small chunks in memory and on disk... Loki
//! prefers handling bigger but fewer chunks" — is encoded here: chunks cut
//! on a byte/age target, caps on label count and stream count, and
//! ordering enforcement.

use omni_model::NANOS_PER_SEC;

/// Ingestion limits and chunk policy.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Seal a head chunk when its uncompressed bytes reach this target.
    pub chunk_target_bytes: usize,
    /// Seal a head chunk when its oldest entry is older than this.
    pub chunk_max_age_ns: i64,
    /// Maximum labels per stream (Loki's `max_label_names_per_series`).
    pub max_label_names_per_series: usize,
    /// Maximum length of one log line.
    pub max_line_size: usize,
    /// Maximum number of active streams per ingester shard.
    pub max_streams_per_shard: usize,
    /// Reject entries older than the newest accepted entry of the stream
    /// minus this tolerance (out-of-order window).
    pub out_of_order_tolerance_ns: i64,
    /// Retention horizon; chunks whose max timestamp falls behind
    /// `now - retention_ns` are deleted. The paper keeps "up to two years".
    pub retention_ns: i64,
    /// The query frontend splits range/log queries into sub-queries of at
    /// most this many nanoseconds, aligned to absolute multiples so
    /// repeated dashboard refreshes produce identical, cacheable splits
    /// (Loki's `split_queries_by_interval`). `0` disables splitting.
    pub split_interval_ns: i64,
    /// Reject log queries requesting more than this many entries
    /// (Loki's `max_entries_limit_per_query`).
    pub max_entries_per_query: usize,
    /// Reject a query once its freshly executed splits have scanned more
    /// than this many line bytes (Loki's `max_query_bytes_read`); bytes
    /// served from the results cache do not count against the budget.
    pub max_bytes_scanned: usize,
    /// Per-query deadline on the shared virtual clock (Loki's
    /// `query_timeout`): a query is rejected once `now` reaches its
    /// arrival time plus this budget. The simulation's clock only
    /// advances between steps, so `0` rejects deterministically and any
    /// positive budget admits a same-tick query.
    pub query_timeout_ns: i64,
    /// How often the compactor runs on the virtual clock (Loki's
    /// `compaction_interval`). `0` disables the background cadence
    /// (explicit `compact()` calls still work).
    pub compaction_interval_ns: i64,
    /// Only sealed chunks whose newest entry is at least this old are
    /// compacted — younger ones may still gain same-window siblings, and
    /// recompacting a hot window churns objects for nothing.
    pub compact_after_ns: i64,
    /// Target uncompressed size of one compacted object ("Loki prefers
    /// handling bigger but fewer chunks", §IV-A).
    pub compacted_target_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            chunk_target_bytes: 256 * 1024,
            chunk_max_age_ns: 3_600 * NANOS_PER_SEC,
            max_label_names_per_series: 15,
            max_line_size: 64 * 1024,
            max_streams_per_shard: 100_000,
            out_of_order_tolerance_ns: 0,
            retention_ns: 2 * 365 * 86_400 * NANOS_PER_SEC, // two years
            split_interval_ns: 3_600 * NANOS_PER_SEC,       // Loki defaults to 1h
            max_entries_per_query: usize::MAX,
            max_bytes_scanned: usize::MAX,
            query_timeout_ns: i64::MAX,
            compaction_interval_ns: 600 * NANOS_PER_SEC, // Loki's 10m default
            compact_after_ns: 2 * 3_600 * NANOS_PER_SEC,
            compacted_target_bytes: 1024 * 1024,
        }
    }
}

impl Limits {
    /// Small chunks for tests (seal quickly).
    pub fn tiny_chunks() -> Self {
        Self { chunk_target_bytes: 512, ..Default::default() }
    }

    /// The per-tenant limits a tenant without an override runs under,
    /// derived from the cluster limits (the `default → override`
    /// resolution order real Loki applies to its `overrides:` block).
    pub fn tenant_defaults(&self) -> TenantLimits {
        TenantLimits {
            max_entries_per_query: self.max_entries_per_query,
            max_bytes_scanned: self.max_bytes_scanned,
            retention_ns: self.retention_ns,
            ..TenantLimits::default()
        }
    }
}

/// Per-tenant override limits — the reproduction of Loki's per-tenant
/// `overrides:` block. Every field bounds one resource a noisy tenant
/// could otherwise monopolise; admission control sheds (typed, `429`
/// style) instead of panicking or silently dropping when a bound is hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLimits {
    /// Ingest token-bucket refill, in records per virtual second
    /// (`u64::MAX` = unmetered).
    pub ingest_rate_per_sec: u64,
    /// Ingest token-bucket capacity, in records.
    pub ingest_burst: u64,
    /// Cap on the tenant's concurrently active streams across the
    /// cluster (Loki's `max_global_streams_per_user`).
    pub max_active_streams: usize,
    /// Per-query entry cap for this tenant's queries.
    pub max_entries_per_query: usize,
    /// Per-query fresh-bytes-scanned budget for this tenant's queries.
    pub max_bytes_scanned: usize,
    /// Query admission rate, in queries per virtual second
    /// (`u64::MAX` = unmetered).
    pub query_rate_per_sec: u64,
    /// Query token-bucket capacity.
    pub query_burst: u64,
    /// Retention horizon for this tenant's streams.
    pub retention_ns: i64,
    /// Weight in the frontend's fair scheduler: a tenant with twice the
    /// weight gets twice the split-execution share under contention.
    pub query_weight: u32,
}

impl Default for TenantLimits {
    fn default() -> Self {
        Self {
            ingest_rate_per_sec: u64::MAX,
            ingest_burst: u64::MAX,
            max_active_streams: usize::MAX,
            max_entries_per_query: usize::MAX,
            max_bytes_scanned: usize::MAX,
            query_rate_per_sec: u64::MAX,
            query_burst: u64::MAX,
            retention_ns: 2 * 365 * 86_400 * NANOS_PER_SEC,
            query_weight: 1,
        }
    }
}

impl TenantLimits {
    /// A zero-limit tenant: every ingest and query is shed. The edge case
    /// operators use to hard-disable a tenant without deleting its data.
    pub fn zero() -> Self {
        Self {
            ingest_rate_per_sec: 0,
            ingest_burst: 0,
            query_rate_per_sec: 0,
            query_burst: 0,
            max_active_streams: 0,
            ..Default::default()
        }
    }
}

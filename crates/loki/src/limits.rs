//! Per-tenant limits and chunk-cutting policy.
//!
//! The paper's §IV-A design discussion — "the overuse of labels will
//! create a huge amount of small chunks in memory and on disk... Loki
//! prefers handling bigger but fewer chunks" — is encoded here: chunks cut
//! on a byte/age target, caps on label count and stream count, and
//! ordering enforcement.

use omni_model::NANOS_PER_SEC;

/// Ingestion limits and chunk policy.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Seal a head chunk when its uncompressed bytes reach this target.
    pub chunk_target_bytes: usize,
    /// Seal a head chunk when its oldest entry is older than this.
    pub chunk_max_age_ns: i64,
    /// Maximum labels per stream (Loki's `max_label_names_per_series`).
    pub max_label_names_per_series: usize,
    /// Maximum length of one log line.
    pub max_line_size: usize,
    /// Maximum number of active streams per ingester shard.
    pub max_streams_per_shard: usize,
    /// Reject entries older than the newest accepted entry of the stream
    /// minus this tolerance (out-of-order window).
    pub out_of_order_tolerance_ns: i64,
    /// Retention horizon; chunks whose max timestamp falls behind
    /// `now - retention_ns` are deleted. The paper keeps "up to two years".
    pub retention_ns: i64,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            chunk_target_bytes: 256 * 1024,
            chunk_max_age_ns: 3_600 * NANOS_PER_SEC,
            max_label_names_per_series: 15,
            max_line_size: 64 * 1024,
            max_streams_per_shard: 100_000,
            out_of_order_tolerance_ns: 0,
            retention_ns: 2 * 365 * 86_400 * NANOS_PER_SEC, // two years
        }
    }
}

impl Limits {
    /// Small chunks for tests (seal quickly).
    pub fn tiny_chunks() -> Self {
        Self { chunk_target_bytes: 512, ..Default::default() }
    }
}

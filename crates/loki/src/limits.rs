//! Per-tenant limits and chunk-cutting policy.
//!
//! The paper's §IV-A design discussion — "the overuse of labels will
//! create a huge amount of small chunks in memory and on disk... Loki
//! prefers handling bigger but fewer chunks" — is encoded here: chunks cut
//! on a byte/age target, caps on label count and stream count, and
//! ordering enforcement.

use omni_model::NANOS_PER_SEC;

/// Ingestion limits and chunk policy.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Seal a head chunk when its uncompressed bytes reach this target.
    pub chunk_target_bytes: usize,
    /// Seal a head chunk when its oldest entry is older than this.
    pub chunk_max_age_ns: i64,
    /// Maximum labels per stream (Loki's `max_label_names_per_series`).
    pub max_label_names_per_series: usize,
    /// Maximum length of one log line.
    pub max_line_size: usize,
    /// Maximum number of active streams per ingester shard.
    pub max_streams_per_shard: usize,
    /// Reject entries older than the newest accepted entry of the stream
    /// minus this tolerance (out-of-order window).
    pub out_of_order_tolerance_ns: i64,
    /// Retention horizon; chunks whose max timestamp falls behind
    /// `now - retention_ns` are deleted. The paper keeps "up to two years".
    pub retention_ns: i64,
    /// The query frontend splits range/log queries into sub-queries of at
    /// most this many nanoseconds, aligned to absolute multiples so
    /// repeated dashboard refreshes produce identical, cacheable splits
    /// (Loki's `split_queries_by_interval`). `0` disables splitting.
    pub split_interval_ns: i64,
    /// Reject log queries requesting more than this many entries
    /// (Loki's `max_entries_limit_per_query`).
    pub max_entries_per_query: usize,
    /// Reject a query once its freshly executed splits have scanned more
    /// than this many line bytes (Loki's `max_query_bytes_read`); bytes
    /// served from the results cache do not count against the budget.
    pub max_bytes_scanned: usize,
    /// Per-query deadline on the shared virtual clock (Loki's
    /// `query_timeout`): a query is rejected once `now` reaches its
    /// arrival time plus this budget. The simulation's clock only
    /// advances between steps, so `0` rejects deterministically and any
    /// positive budget admits a same-tick query.
    pub query_timeout_ns: i64,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            chunk_target_bytes: 256 * 1024,
            chunk_max_age_ns: 3_600 * NANOS_PER_SEC,
            max_label_names_per_series: 15,
            max_line_size: 64 * 1024,
            max_streams_per_shard: 100_000,
            out_of_order_tolerance_ns: 0,
            retention_ns: 2 * 365 * 86_400 * NANOS_PER_SEC, // two years
            split_interval_ns: 3_600 * NANOS_PER_SEC,       // Loki defaults to 1h
            max_entries_per_query: usize::MAX,
            max_bytes_scanned: usize::MAX,
            query_timeout_ns: i64::MAX,
        }
    }
}

impl Limits {
    /// Small chunks for tests (seal quickly).
    pub fn tiny_chunks() -> Self {
        Self { chunk_target_bytes: 512, ..Default::default() }
    }
}

//! One ingester shard: owns a set of streams and their label index.
//!
//! The paper's Loki cluster runs 8 ingester worker nodes; the distributor
//! shards streams across them by label fingerprint. Each shard is
//! independently locked so ingest scales with shard count (experiment C5).

use crate::chunkstore::ChunkStore;
use crate::index::LabelIndex;
use crate::limits::Limits;
use crate::stream::{AppendError, ReadStats, Stream};
use crate::tenant::TenantRejection;
use omni_logql::Selector;
use omni_model::{LabelSet, LogEntry, LogRecord, Timestamp};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ingest rejection reasons surfaced to the distributor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Stream-level append failure.
    Append(AppendError),
    /// Too many labels on the stream.
    TooManyLabels(usize),
    /// Shard is at its stream cap.
    StreamLimitExceeded,
    /// Entry carried no labels at all.
    EmptyLabels,
    /// Every ingester shard is down; the distributor has nowhere to route.
    AllShardsDown,
    /// Tenant admission control shed the record — the `429` of the
    /// simulation. Carries who and why; never a panic, never silent.
    TenantRejected(TenantRejection),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Append(e) => write!(f, "{e}"),
            IngestError::TooManyLabels(n) => write!(f, "{n} labels exceeds per-stream limit"),
            IngestError::StreamLimitExceeded => write!(f, "per-shard stream limit exceeded"),
            IngestError::EmptyLabels => write!(f, "entry has no labels"),
            IngestError::AllShardsDown => write!(f, "all ingester shards down"),
            IngestError::TenantRejected(r) => write!(f, "{r}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Counters exported by one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngesterStats {
    /// Entries accepted.
    pub entries: u64,
    /// Line bytes accepted.
    pub bytes: u64,
    /// Chunks sealed so far.
    pub chunks_sealed: u64,
    /// Entries rejected.
    pub rejected: u64,
}

struct ShardState {
    streams: HashMap<u64, Stream>,
    index: LabelIndex,
    /// Uncompressed sizes of chunks sealed since the last drain — the
    /// stack turns these into its chunk fill-ratio histogram.
    seal_sizes: Vec<u64>,
}

/// One ingester shard.
pub struct Ingester {
    state: RwLock<ShardState>,
    limits: Limits,
    chunk_store: Option<ChunkStore>,
    /// `(index, total)` placement in the cluster ring. The chunk store is
    /// shared, so exactly one shard — the stream's home — serves and
    /// retires a stream's offloaded chunks, else fan-out queries would
    /// count them once per shard.
    shard: (usize, usize),
    entries: AtomicU64,
    bytes: AtomicU64,
    chunks_sealed: AtomicU64,
    rejected: AtomicU64,
}

impl Ingester {
    /// Empty shard with the given limits.
    pub fn new(limits: Limits) -> Self {
        Self::with_store(limits, None)
    }

    /// Shard backed by a chunk object store for offloaded chunks.
    pub fn with_store(limits: Limits, chunk_store: Option<ChunkStore>) -> Self {
        Self::with_shard(limits, chunk_store, 0, 1)
    }

    /// Shard at ring position `shard_index` of `shard_total`.
    pub fn with_shard(
        limits: Limits,
        chunk_store: Option<ChunkStore>,
        shard_index: usize,
        shard_total: usize,
    ) -> Self {
        assert!(shard_index < shard_total, "shard index out of range");
        Self {
            state: RwLock::new(ShardState {
                streams: HashMap::new(),
                index: LabelIndex::new(),
                seal_sizes: Vec::new(),
            }),
            limits,
            chunk_store,
            shard: (shard_index, shard_total),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            chunks_sealed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Whether this shard is the home for a stream's durable-tier data.
    fn owns(&self, fingerprint: u64) -> bool {
        fingerprint % self.shard.1 as u64 == self.shard.0 as u64
    }

    /// Validate and append one record with the shard lock already held.
    /// Returns `(line_bytes, sealed_a_chunk)` so callers can batch the
    /// counter updates outside the lock.
    fn append_locked(
        st: &mut ShardState,
        limits: &Limits,
        record: LogRecord,
        fp: u64,
    ) -> Result<(u64, bool), IngestError> {
        if record.labels.is_empty() {
            return Err(IngestError::EmptyLabels);
        }
        if record.labels.len() > limits.max_label_names_per_series {
            return Err(IngestError::TooManyLabels(record.labels.len()));
        }
        let bytes = record.entry.line.len() as u64;
        if !st.streams.contains_key(&fp) {
            if st.streams.len() >= limits.max_streams_per_shard {
                return Err(IngestError::StreamLimitExceeded);
            }
            st.index.insert(&record.labels, fp);
        }
        let stream = st.streams.entry(fp).or_insert_with(|| Stream::new(record.labels.clone()));
        match stream.append(record.entry, limits) {
            Ok(sealed) => {
                if sealed {
                    if let Some(c) = stream.sealed_chunks().last() {
                        st.seal_sizes.push(c.uncompressed as u64);
                    }
                }
                Ok((bytes, sealed))
            }
            Err(e) => Err(IngestError::Append(e)),
        }
    }

    /// Append one record (labels must already be validated/fingerprinted
    /// by the distributor, but the shard re-checks its own limits).
    pub fn append(&self, record: LogRecord) -> Result<(), IngestError> {
        let fp = record.labels.fingerprint();
        self.append_with_fp(record, fp)
    }

    /// [`Ingester::append`] with the label fingerprint already computed
    /// (the distributor hashes labels for routing; no need to do it twice).
    pub fn append_with_fp(&self, record: LogRecord, fp: u64) -> Result<(), IngestError> {
        let mut st = self.state.write();
        let res = Self::append_locked(&mut st, &self.limits, record, fp);
        drop(st);
        match res {
            Ok((bytes, sealed)) => {
                self.entries.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(bytes, Ordering::Relaxed);
                if sealed {
                    self.chunks_sealed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Append a whole batch under a **single** shard-lock acquisition,
    /// returning one result per record in input order. Per-record
    /// validation and stream state changes are identical to calling
    /// [`Ingester::append`] in a loop; only the locking, the per-run
    /// stream lookup, and the counter updates are amortised: batches
    /// arrive stream-grouped, so after the first record of a run the
    /// stream is resolved once and the rest of the run appends straight
    /// onto it without re-probing the stream map.
    pub fn append_batch(&self, records: Vec<(u64, LogRecord)>) -> Vec<Result<(), IngestError>> {
        let mut out = Vec::with_capacity(records.len());
        let (mut entries, mut bytes, mut sealed_n, mut rejected) = (0u64, 0u64, 0u64, 0u64);
        {
            let mut st = self.state.write();
            let mut it = records.into_iter().peekable();
            while let Some((fp, record)) = it.next() {
                // First record of a run takes the full path (it may create
                // the stream, or fail the shard's stream cap).
                match Self::append_locked(&mut st, &self.limits, record, fp) {
                    Ok((b, sealed)) => {
                        entries += 1;
                        bytes += b;
                        if sealed {
                            sealed_n += 1;
                        }
                        out.push(Ok(()));
                    }
                    Err(e) => {
                        rejected += 1;
                        out.push(Err(e));
                    }
                }
                if it.peek().map(|(f, _)| *f) != Some(fp) {
                    continue;
                }
                // Rest of the run: the stream (if it exists — creation may
                // have been rejected above, in which case every record of
                // the run retries the full path) is borrowed once.
                let mut run_seal_sizes: Vec<u64> = Vec::new();
                if let Some(stream) = st.streams.get_mut(&fp) {
                    while it.peek().map(|(f, _)| *f) == Some(fp) {
                        let Some((_, record)) = it.next() else { break };
                        if record.labels.is_empty() {
                            rejected += 1;
                            out.push(Err(IngestError::EmptyLabels));
                            continue;
                        }
                        if record.labels.len() > self.limits.max_label_names_per_series {
                            rejected += 1;
                            out.push(Err(IngestError::TooManyLabels(record.labels.len())));
                            continue;
                        }
                        let b = record.entry.line.len() as u64;
                        match stream.append(record.entry, &self.limits) {
                            Ok(sealed) => {
                                entries += 1;
                                bytes += b;
                                if sealed {
                                    sealed_n += 1;
                                    if let Some(c) = stream.sealed_chunks().last() {
                                        run_seal_sizes.push(c.uncompressed as u64);
                                    }
                                }
                                out.push(Ok(()));
                            }
                            Err(e) => {
                                rejected += 1;
                                out.push(Err(IngestError::Append(e)));
                            }
                        }
                    }
                }
                st.seal_sizes.append(&mut run_seal_sizes);
            }
        }
        self.entries.fetch_add(entries, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.chunks_sealed.fetch_add(sealed_n, Ordering::Relaxed);
        self.rejected.fetch_add(rejected, Ordering::Relaxed);
        out
    }

    /// Append one stream-framed run — the Loki push protocol's shape: a
    /// label set plus its entries — under a single lock acquisition. The
    /// labels are validated once and the stream resolved once; each entry
    /// then pays only the per-entry stream append. Returns one result per
    /// entry in input order.
    pub fn append_run(
        &self,
        fp: u64,
        labels: &LabelSet,
        entries: Vec<LogEntry>,
    ) -> Vec<Result<(), IngestError>> {
        let n = entries.len();
        if labels.is_empty() {
            self.rejected.fetch_add(n as u64, Ordering::Relaxed);
            return vec![Err(IngestError::EmptyLabels); n];
        }
        if labels.len() > self.limits.max_label_names_per_series {
            self.rejected.fetch_add(n as u64, Ordering::Relaxed);
            return vec![Err(IngestError::TooManyLabels(labels.len())); n];
        }
        let mut out = Vec::with_capacity(n);
        let (mut entries_n, mut bytes, mut sealed_n, mut rejected) = (0u64, 0u64, 0u64, 0u64);
        {
            let mut st = self.state.write();
            if !st.streams.contains_key(&fp) {
                if st.streams.len() >= self.limits.max_streams_per_shard {
                    self.rejected.fetch_add(n as u64, Ordering::Relaxed);
                    return vec![Err(IngestError::StreamLimitExceeded); n];
                }
                st.index.insert(labels, fp);
            }
            let mut run_seal_sizes: Vec<u64> = Vec::new();
            let stream = st.streams.entry(fp).or_insert_with(|| Stream::new(labels.clone()));
            for entry in entries {
                let b = entry.line.len() as u64;
                match stream.append(entry, &self.limits) {
                    Ok(sealed) => {
                        entries_n += 1;
                        bytes += b;
                        if sealed {
                            sealed_n += 1;
                            if let Some(c) = stream.sealed_chunks().last() {
                                run_seal_sizes.push(c.uncompressed as u64);
                            }
                        }
                        out.push(Ok(()));
                    }
                    Err(e) => {
                        rejected += 1;
                        out.push(Err(IngestError::Append(e)));
                    }
                }
            }
            st.seal_sizes.append(&mut run_seal_sizes);
        }
        self.entries.fetch_add(entries_n, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.chunks_sealed.fetch_add(sealed_n, Ordering::Relaxed);
        self.rejected.fetch_add(rejected, Ordering::Relaxed);
        out
    }

    /// Streams matching a selector: index candidates from equality
    /// matchers, then full matcher evaluation per candidate. Streams that
    /// live only in the durable tier (offloaded, then the in-memory map
    /// lost to a crash) are found via the store's series index, home
    /// shard only.
    pub fn select_streams(&self, selector: &Selector) -> Vec<LabelSet> {
        let st = self.state.read();
        let mut out: Vec<LabelSet> = st
            .index
            .candidates(selector.equality_matchers())
            .into_iter()
            .filter_map(|fp| st.streams.get(&fp))
            .filter(|s| selector.matches(&s.labels))
            .map(|s| s.labels.clone())
            .collect();
        if let Some(store) = &self.chunk_store {
            for (fp, labels) in store.series() {
                if self.owns(fp) && !st.streams.contains_key(&fp) && selector.matches(&labels) {
                    out.push(labels);
                }
            }
        }
        out
    }

    /// Entries of matching streams in `(start, end]`, tagged with their
    /// stream labels.
    pub fn query(
        &self,
        selector: &Selector,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<(LabelSet, Vec<LogEntry>)> {
        self.query_stats(selector, start, end).0
    }

    /// [`Ingester::query`] that also reports the storage-side read cost:
    /// chunks touched (memory and durable tier) and blocks decoded vs.
    /// skipped inside them.
    pub fn query_stats(
        &self,
        selector: &Selector,
        start: Timestamp,
        end: Timestamp,
    ) -> (Vec<(LabelSet, Vec<LogEntry>)>, ReadStats) {
        let st = self.state.read();
        let mut stats = ReadStats::default();
        let mut out: Vec<(LabelSet, Vec<LogEntry>)> = st
            .index
            .candidates(selector.equality_matchers())
            .into_iter()
            .filter_map(|fp| st.streams.get(&fp))
            .filter(|s| selector.matches(&s.labels))
            .map(|s| {
                let (mut entries, read) = s.entries_in_stats(start, end);
                stats.absorb(read);
                // Merge in offloaded chunks from the disk tier — home
                // shard only, since the store is shared cluster-wide.
                if let Some(store) = &self.chunk_store {
                    let fp = s.labels.fingerprint();
                    if self.owns(fp) {
                        let (chunks, fetch) = store.fetch_stats(fp, start, end);
                        stats.cold_chunks_touched += fetch.cold_objects;
                        for chunk in chunks {
                            stats.chunks_touched += 1;
                            if let Ok((es, ds)) = chunk.decode_range_stats(start, end) {
                                stats.decode.absorb(ds);
                                entries.extend(es);
                            }
                        }
                        entries.sort_by_key(|e| e.ts);
                    }
                }
                (s.labels.clone(), entries)
            })
            .filter(|(_, es)| !es.is_empty())
            .collect();
        // Durable-tier-only streams (in-memory state lost to a crash, or
        // never on this replacement ingester): served off the store's
        // series index so offloaded data survives any ingester.
        if let Some(store) = &self.chunk_store {
            for (fp, labels) in store.series() {
                if !self.owns(fp) || st.streams.contains_key(&fp) || !selector.matches(&labels) {
                    continue;
                }
                let mut entries = Vec::new();
                let (chunks, fetch) = store.fetch_stats(fp, start, end);
                stats.cold_chunks_touched += fetch.cold_objects;
                for chunk in chunks {
                    stats.chunks_touched += 1;
                    if let Ok((es, ds)) = chunk.decode_range_stats(start, end) {
                        stats.decode.absorb(ds);
                        entries.extend(es);
                    }
                }
                if !entries.is_empty() {
                    entries.sort_by_key(|e| e.ts);
                    out.push((labels, entries));
                }
            }
        }
        (out, stats)
    }

    /// Offload sealed chunks entirely older than `older_than` to the
    /// chunk store ("chunks are first stored in memory, and then moved to
    /// disk"). Returns chunks moved; no-op without a store.
    pub fn offload(&self, older_than: Timestamp) -> usize {
        let Some(store) = &self.chunk_store else { return 0 };
        let mut st = self.state.write();
        let mut moved = 0;
        for (fp, s) in st.streams.iter_mut() {
            let drained = s.drain_chunks_before(older_than);
            if drained.is_empty() {
                continue;
            }
            store.register_series(*fp, &s.labels);
            for chunk in drained {
                store.persist(*fp, &chunk);
                moved += 1;
            }
        }
        moved
    }

    /// Seal head chunks older than the age limit.
    pub fn tick(&self, now: Timestamp) {
        let mut st = self.state.write();
        let mut sealed = 0;
        let mut sizes: Vec<u64> = Vec::new();
        for s in st.streams.values_mut() {
            if s.maybe_seal_by_age(now, &self.limits) {
                sealed += 1;
                if let Some(c) = s.sealed_chunks().last() {
                    sizes.push(c.uncompressed as u64);
                }
            }
        }
        st.seal_sizes.append(&mut sizes);
        self.chunks_sealed.fetch_add(sealed, Ordering::Relaxed);
    }

    /// Drain the uncompressed sizes of chunks sealed since the last call
    /// (by target-size overflow or by age). Feeds the fill-ratio
    /// histogram in the stack's self-telemetry.
    pub fn take_seal_sizes(&self) -> Vec<u64> {
        std::mem::take(&mut self.state.write().seal_sizes)
    }

    /// Force-flush every head chunk.
    pub fn flush(&self) {
        let mut st = self.state.write();
        for s in st.streams.values_mut() {
            s.flush();
        }
    }

    /// Drop chunks and streams beyond the retention horizon.
    /// Returns `(chunks_dropped, streams_dropped)`.
    pub fn enforce_retention(&self, now: Timestamp) -> (usize, usize) {
        let (chunks, dropped) = self.enforce_retention_by(now, &|_| self.limits.retention_ns);
        (chunks, dropped.len())
    }

    /// Drop chunks and streams beyond a *per-stream* retention horizon:
    /// `retention_of(labels)` names each stream's horizon, which is how
    /// per-tenant retention reaches storage (the resolver reads the
    /// stream's `__tenant__` label). Returns the chunks dropped and the
    /// `(fingerprint, labels)` of every fully retired stream so the
    /// caller can release tenant stream-cap accounting.
    pub fn enforce_retention_by(
        &self,
        now: Timestamp,
        retention_of: &(dyn Fn(&LabelSet) -> i64 + Sync),
    ) -> (usize, Vec<(u64, LabelSet)>) {
        let mut st = self.state.write();
        let mut chunks = 0;
        let mut dead: Vec<u64> = Vec::new();
        for (fp, s) in st.streams.iter_mut() {
            // Saturate: a sentinel `now` must clamp, not wrap (the
            // `start - range_ns` overflow class).
            let horizon = now.saturating_sub(retention_of(&s.labels));
            chunks += s.enforce_retention(horizon);
            if s.is_empty() && s.newest_ts() < horizon {
                dead.push(*fp);
            }
        }
        let mut dropped: Vec<(u64, LabelSet)> = Vec::new();
        for fp in &dead {
            if let Some(s) = st.streams.remove(fp) {
                let labels = s.labels.clone();
                st.index.remove(&labels, *fp);
                dropped.push((*fp, labels));
            }
        }
        // The disk tiers obey the same horizons, but their deletes are
        // executed by the compactor's single store walk (see
        // `compactor::Compactor::apply_retention`), not an eager
        // per-shard sweep here.
        (chunks, dropped)
    }

    /// Oldest timestamp held only in memory across every stream — the WAL
    /// checkpoint bound. `None` when everything accepted is durable (or
    /// the shard is empty).
    pub fn min_unpersisted_ts(&self) -> Option<Timestamp> {
        self.state.read().streams.values().filter_map(|s| s.oldest_ts_in_memory()).min()
    }

    /// Shard counters.
    pub fn stats(&self) -> IngesterStats {
        IngesterStats {
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            chunks_sealed: self.chunks_sealed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Number of active streams.
    pub fn stream_count(&self) -> usize {
        self.state.read().streams.len()
    }

    /// Total sealed chunks currently held.
    pub fn chunk_count(&self) -> usize {
        self.state.read().streams.values().map(|s| s.chunk_count()).sum()
    }

    /// Sum of compressed chunk bytes held.
    pub fn compressed_bytes(&self) -> usize {
        self.state
            .read()
            .streams
            .values()
            .flat_map(|s| s.sealed_chunks())
            .map(|c| c.compressed_size())
            .sum()
    }

    /// Sum of uncompressed chunk payload bytes held.
    pub fn uncompressed_bytes(&self) -> usize {
        self.state
            .read()
            .streams
            .values()
            .flat_map(|s| s.sealed_chunks())
            .map(|c| c.uncompressed)
            .sum()
    }

    /// Raw compressed bytes of every sealed chunk, keyed by stream
    /// fingerprint and ordered by fingerprint — the byte-level surface the
    /// batch/sequential equivalence tests compare.
    pub fn sealed_chunk_bytes(&self) -> Vec<(u64, Vec<u8>)> {
        let st = self.state.read();
        let mut fps: Vec<u64> = st.streams.keys().copied().collect();
        fps.sort_unstable();
        fps.into_iter()
            .map(|fp| {
                let mut bytes = Vec::new();
                for c in st.streams[&fp].sealed_chunks() {
                    bytes.extend_from_slice(c.raw_block());
                }
                (fp, bytes)
            })
            .collect()
    }

    /// Index entry count (see C4).
    pub fn index_entries(&self) -> usize {
        self.state.read().index.entry_count()
    }

    /// Approximate index memory.
    pub fn index_bytes(&self) -> usize {
        self.state.read().index.approx_bytes()
    }

    /// Label values (for the API surface Grafana uses).
    pub fn label_values(&self, name: &str) -> Vec<String> {
        self.state.read().index.label_values(name)
    }

    /// Label names present on this shard.
    pub fn label_names(&self) -> Vec<String> {
        self.state.read().index.label_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_logql::parse_selector;
    use omni_model::labels;

    fn rec(labels: LabelSet, ts: Timestamp, line: &str) -> LogRecord {
        LogRecord::new(labels, ts, line)
    }

    #[test]
    fn append_creates_stream_and_indexes() {
        let ing = Ingester::new(Limits::default());
        ing.append(rec(labels!("app" => "fm"), 1, "hello")).unwrap();
        assert_eq!(ing.stream_count(), 1);
        let sel = parse_selector(r#"{app="fm"}"#).unwrap();
        let streams = ing.select_streams(&sel);
        assert_eq!(streams.len(), 1);
    }

    #[test]
    fn query_respects_selector_and_window() {
        let ing = Ingester::new(Limits::default());
        for i in 0..10 {
            ing.append(rec(labels!("app" => "a"), i * 10, "a line")).unwrap();
            ing.append(rec(labels!("app" => "b"), i * 10, "b line")).unwrap();
        }
        let sel = parse_selector(r#"{app="a"}"#).unwrap();
        let got = ing.query(&sel, 20, 50);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.len(), 3); // 30,40,50
    }

    #[test]
    fn regex_selector_falls_back_to_scan() {
        let ing = Ingester::new(Limits::default());
        ing.append(rec(labels!("app" => "fabric_manager_monitor"), 1, "x")).unwrap();
        ing.append(rec(labels!("app" => "loki"), 1, "y")).unwrap();
        let sel = parse_selector(r#"{app=~"fabric.*"}"#).unwrap();
        assert_eq!(ing.select_streams(&sel).len(), 1);
    }

    #[test]
    fn limits_enforced() {
        let limits = Limits {
            max_label_names_per_series: 2,
            max_streams_per_shard: 1,
            ..Default::default()
        };
        let ing = Ingester::new(limits);
        let too_many = labels!("a" => "1", "b" => "2", "c" => "3");
        assert!(matches!(ing.append(rec(too_many, 1, "x")), Err(IngestError::TooManyLabels(3))));
        ing.append(rec(labels!("a" => "1"), 1, "x")).unwrap();
        assert!(matches!(
            ing.append(rec(labels!("a" => "2"), 1, "x")),
            Err(IngestError::StreamLimitExceeded)
        ));
        assert!(matches!(ing.append(rec(LabelSet::new(), 1, "x")), Err(IngestError::EmptyLabels)));
        assert_eq!(ing.stats().rejected, 3);
    }

    #[test]
    fn retention_drops_streams_and_chunks() {
        let limits = Limits { chunk_target_bytes: 8, retention_ns: 100, ..Default::default() };
        let ing = Ingester::new(limits);
        ing.append(rec(labels!("old" => "1"), 10, "0123456789")).unwrap();
        ing.append(rec(labels!("new" => "1"), 900, "0123456789")).unwrap();
        let (chunks, streams) = ing.enforce_retention(1000);
        assert!(chunks >= 1);
        assert_eq!(streams, 1);
        assert_eq!(ing.stream_count(), 1);
    }

    #[test]
    fn tick_seals_aged_heads() {
        let limits = Limits { chunk_max_age_ns: 100, ..Default::default() };
        let ing = Ingester::new(limits);
        ing.append(rec(labels!("a" => "1"), 0, "x")).unwrap();
        assert_eq!(ing.chunk_count(), 1); // head counts as one bucket
        ing.tick(500);
        assert_eq!(ing.stats().chunks_sealed, 1);
    }

    #[test]
    fn concurrent_appends_across_streams() {
        let ing = std::sync::Arc::new(Ingester::new(Limits::default()));
        std::thread::scope(|s| {
            for t in 0..8 {
                let ing = ing.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        ing.append(rec(labels!("worker" => format!("{t}")), i, "concurrent line"))
                            .unwrap();
                    }
                });
            }
        });
        let stats = ing.stats();
        assert_eq!(stats.entries, 4_000);
        assert_eq!(ing.stream_count(), 8);
    }

    #[test]
    fn compression_accounting() {
        let limits = Limits { chunk_target_bytes: 1_000, ..Default::default() };
        let ing = Ingester::new(limits);
        for i in 0..200 {
            ing.append(rec(labels!("a" => "1"), i, "a very repetitive log line indeed")).unwrap();
        }
        ing.flush();
        assert!(ing.compressed_bytes() > 0);
        assert!(ing.uncompressed_bytes() > ing.compressed_bytes());
    }
}

//! The query engine: LogQL over the shard set, scanning shards in
//! parallel (map) and merging results (reduce).

use crate::ingester::Ingester;
use crate::stream::ReadStats;
use omni_logql::{
    eval::{eval_metric_at, eval_metric_range, InstantVector, Matrix, RangeEntry},
    Expr, LogQuery, MetricQuery, Pipeline,
};
use omni_model::{LabelSet, LogEntry, LogRecord, Timestamp};
use std::sync::Arc;

/// Execution statistics for one query, mirroring the shape of Loki's
/// statistics API: scan volume (streams/entries/bytes) plus storage-side
/// cost (chunks touched, blocks decoded vs. skipped by the per-block
/// timestamp index, uncompressed bytes produced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Streams whose labels matched the selector. When the frontend
    /// splits a query, a stream counts once per split that scanned it.
    pub streams_matched: usize,
    /// Entries decompressed and scanned.
    pub entries_scanned: usize,
    /// Line bytes processed.
    pub bytes_scanned: usize,
    /// Entries actually returned after direction-aware limiting.
    pub entries_returned: usize,
    /// Sealed chunks (memory or durable tier) overlapping the window.
    pub chunks_touched: usize,
    /// Of those, chunks fetched from the cold (compacted) tier — each one
    /// cost a simulated remote object-store GET.
    pub cold_chunks_touched: usize,
    /// Compressed blocks actually decompressed.
    pub blocks_decoded: usize,
    /// Compressed blocks skipped via their min/max timestamp headers.
    pub blocks_skipped: usize,
    /// Uncompressed bytes produced by block decodes.
    pub decompressed_bytes: usize,
}

impl QueryStats {
    /// Fold another query's stats into this one (the frontend's merge
    /// across splits).
    pub fn absorb(&mut self, other: QueryStats) {
        self.streams_matched += other.streams_matched;
        self.entries_scanned += other.entries_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.entries_returned += other.entries_returned;
        self.chunks_touched += other.chunks_touched;
        self.cold_chunks_touched += other.cold_chunks_touched;
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.decompressed_bytes += other.decompressed_bytes;
    }

    fn absorb_read(&mut self, read: ReadStats) {
        self.chunks_touched += read.chunks_touched;
        self.cold_chunks_touched += read.cold_chunks_touched;
        self.blocks_decoded += read.decode.blocks_decoded;
        self.blocks_skipped += read.decode.blocks_skipped;
        self.decompressed_bytes += read.decode.bytes_decompressed;
    }
}

/// The order in which a log query returns — and therefore limits — its
/// records (Loki's `direction` query parameter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Oldest records first (ascending timestamps).
    Forward,
    /// Newest records first (descending timestamps) — Loki's default,
    /// because a limited query from a dashboard wants the latest lines.
    #[default]
    Backward,
}

/// Raw (pre-pipeline) matching entries from every shard, scanned in
/// parallel with scoped threads.
fn gather(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
) -> (Vec<(LabelSet, Vec<LogEntry>)>, ReadStats) {
    if shards.len() == 1 {
        return shards[0].query_stats(&query.selector, start, end);
    }
    let mut out = Vec::new();
    let mut read = ReadStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let selector = &query.selector;
                s.spawn(move || shard.query_stats(selector, start, end))
            })
            .collect();
        for h in handles {
            // Invariant: shard scans are read-only and must not panic; if
            // one does, the query result would be silently partial, so
            // propagating the panic is the correct behaviour here.
            let (streams, stats) = h.join().expect("shard scan panicked"); // lint:allow(no-unwrap)
            out.extend(streams);
            read.absorb(stats);
        }
    });
    (out, read)
}

/// Run a log query over `(start, end]`, returning up to `limit` records
/// in `direction` order: `Backward` keeps the **newest** records when
/// the limit bites (ties broken by labels for determinism — `Backward`
/// is the exact reverse of the `Forward` total order).
pub fn run_log_query(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
    limit: usize,
    direction: Direction,
) -> Vec<LogRecord> {
    run_log_query_with_stats(shards, query, start, end, limit, direction).0
}

/// [`run_log_query`] plus execution statistics.
pub fn run_log_query_with_stats(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
    limit: usize,
    direction: Direction,
) -> (Vec<LogRecord>, QueryStats) {
    let pipeline = Pipeline::new(query.stages.clone());
    let mut records = Vec::new();
    let mut stats = QueryStats::default();
    let (streams, read) = gather(shards, query, start, end);
    stats.absorb_read(read);
    for (labels, entries) in streams {
        stats.streams_matched += 1;
        for e in entries {
            stats.entries_scanned += 1;
            stats.bytes_scanned += e.line.len();
            if let Some(p) = pipeline.process(&e.line, &labels) {
                records.push(LogRecord { labels: p.labels, entry: LogEntry::new(e.ts, p.line) });
            }
        }
    }
    records.sort_by(|a, b| {
        let forward = a.entry.ts.cmp(&b.entry.ts).then_with(|| a.labels.cmp(&b.labels));
        match direction {
            Direction::Forward => forward,
            Direction::Backward => forward.reverse(),
        }
    });
    records.truncate(limit);
    stats.entries_returned = records.len();
    (records, stats)
}

/// Pipeline-processed entries for metric evaluation, plus execution
/// statistics.
fn fetch_range_entries_with_stats(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
) -> (Vec<RangeEntry>, QueryStats) {
    let pipeline = Pipeline::new(query.stages.clone());
    let mut out = Vec::new();
    let mut stats = QueryStats::default();
    let (streams, read) = gather(shards, query, start, end);
    stats.absorb_read(read);
    for (labels, entries) in streams {
        stats.streams_matched += 1;
        for e in entries {
            stats.entries_scanned += 1;
            stats.bytes_scanned += e.line.len();
            if let Some(p) = pipeline.process(&e.line, &labels) {
                out.push(RangeEntry {
                    ts: e.ts,
                    line_bytes: p.line.len(),
                    labels: p.labels,
                    unwrapped: p.unwrapped,
                });
            }
        }
    }
    stats.entries_returned = out.len();
    (out, stats)
}

/// Evaluate a metric query at one instant.
pub fn run_instant_query(
    shards: &[Arc<Ingester>],
    query: &MetricQuery,
    at: Timestamp,
) -> InstantVector {
    run_instant_query_with_stats(shards, query, at).0
}

/// [`run_instant_query`] plus execution statistics.
pub fn run_instant_query_with_stats(
    shards: &[Arc<Ingester>],
    query: &MetricQuery,
    at: Timestamp,
) -> (InstantVector, QueryStats) {
    let mut stats = QueryStats::default();
    let mut fetch = |q: &LogQuery, s: Timestamp, e: Timestamp| {
        let (entries, st) = fetch_range_entries_with_stats(shards, q, s, e);
        stats.absorb(st);
        entries
    };
    let vector = eval_metric_at(query, at, &mut fetch);
    (vector, stats)
}

/// Evaluate a metric query over a range at fixed steps (Grafana graphs).
///
/// The bottom log query's entries are fetched and pipeline-processed
/// **once** for the whole `[start - range, end]` span; each step then
/// slices the prefetched entries instead of re-decoding chunks, turning
/// an O(steps x chunks) evaluation into O(chunks + steps x entries).
pub fn run_range_query(
    shards: &[Arc<Ingester>],
    query: &MetricQuery,
    start: Timestamp,
    end: Timestamp,
    step_ns: i64,
) -> Matrix {
    run_range_query_with_stats(shards, query, start, end, step_ns).0
}

/// [`run_range_query`] plus execution statistics.
pub fn run_range_query_with_stats(
    shards: &[Arc<Ingester>],
    query: &MetricQuery,
    start: Timestamp,
    end: Timestamp,
    step_ns: i64,
) -> (Matrix, QueryStats) {
    let bottom = query.log_query();
    let range_ns = query.range_ns();
    // `start` may be a sentinel near `i64::MIN` (cf. `run_expr_instant`);
    // a plain subtraction would overflow past the minimum.
    let (mut prefetched, stats) =
        fetch_range_entries_with_stats(shards, bottom, start.saturating_sub(range_ns), end);
    prefetched.sort_by_key(|e| e.ts);
    let mut fetch = |q: &LogQuery, s: Timestamp, e: Timestamp| {
        // The prefetch covers exactly the bottom log query; an expression
        // shape with a second selector must never silently reuse it.
        assert!(std::ptr::eq(q, bottom), "prefetched entries reused for a different log query");
        // Binary-search the window bounds in the sorted prefetch.
        let lo = prefetched.partition_point(|entry| entry.ts <= s);
        let hi = prefetched.partition_point(|entry| entry.ts <= e);
        prefetched[lo..hi].to_vec()
    };
    let matrix = eval_metric_range(query, start, end, step_ns, &mut fetch);
    (matrix, stats)
}

/// Evaluate a parsed expression at an instant: log queries return their
/// match count (LogCLI-style), metric queries their vector.
pub fn run_expr_instant(shards: &[Arc<Ingester>], expr: &Expr, at: Timestamp) -> InstantVector {
    match expr {
        Expr::Log(q) => {
            // Counting only, so the direction is immaterial.
            let records = run_log_query(shards, q, i64::MIN, at, usize::MAX, Direction::Forward);
            vec![(LabelSet::new(), records.len() as f64)]
        }
        Expr::Metric(m) => run_instant_query(shards, m, at),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::Limits;
    use omni_logql::parse_expr;
    use omni_model::{labels, NANOS_PER_SEC};

    fn shard_with(n: i64) -> Vec<Arc<Ingester>> {
        let ing = Ingester::new(Limits::default());
        for i in 0..n {
            ing.append(LogRecord {
                labels: labels!("app" => "x", "stream" => format!("s{}", i % 2)),
                entry: LogEntry::new(i * NANOS_PER_SEC, format!("line {i}")),
            })
            .unwrap();
        }
        vec![Arc::new(ing)]
    }

    fn log_query(text: &str) -> LogQuery {
        match parse_expr(text).unwrap() {
            Expr::Log(q) => q,
            Expr::Metric(_) => panic!("expected a log query"),
        }
    }

    #[test]
    fn limited_backward_query_returns_newest_records() {
        // Regression: the engine used to sort ascending and then truncate,
        // so a limited query silently returned the *oldest* records.
        let shards = shard_with(100);
        let q = log_query(r#"{app="x"}"#);
        let out = run_log_query(&shards, &q, i64::MIN, i64::MAX, 10, Direction::Backward);
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0].entry.ts >= w[1].entry.ts), "newest first");
        assert_eq!(out[0].entry.ts, 99 * NANOS_PER_SEC, "limit keeps the newest records");
        assert_eq!(out[9].entry.ts, 90 * NANOS_PER_SEC);
    }

    #[test]
    fn forward_direction_returns_oldest_ascending() {
        let shards = shard_with(100);
        let q = log_query(r#"{app="x"}"#);
        let out = run_log_query(&shards, &q, i64::MIN, i64::MAX, 10, Direction::Forward);
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0].entry.ts <= w[1].entry.ts), "oldest first");
        assert_eq!(out[0].entry.ts, 0);
        assert_eq!(out[9].entry.ts, 9 * NANOS_PER_SEC);
    }

    #[test]
    fn backward_is_exact_reverse_of_forward() {
        // Ties (equal timestamps across streams) must stay deterministic:
        // backward is the reversal of the forward total order, not an
        // independent sort.
        let ing = Ingester::new(Limits::default());
        for stream in ["a", "b", "c"] {
            for i in 0..5i64 {
                ing.append(LogRecord {
                    labels: labels!("app" => "x", "stream" => stream),
                    entry: LogEntry::new(i * NANOS_PER_SEC, format!("{stream} {i}")),
                })
                .unwrap();
            }
        }
        let shards = vec![Arc::new(ing)];
        let q = log_query(r#"{app="x"}"#);
        let fwd = run_log_query(&shards, &q, i64::MIN, i64::MAX, usize::MAX, Direction::Forward);
        let mut bwd =
            run_log_query(&shards, &q, i64::MIN, i64::MAX, usize::MAX, Direction::Backward);
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn entries_returned_counts_post_limit_records() {
        let shards = shard_with(100);
        let q = log_query(r#"{app="x"}"#);
        let (out, stats) =
            run_log_query_with_stats(&shards, &q, i64::MIN, i64::MAX, 7, Direction::Backward);
        assert_eq!(out.len(), 7);
        assert_eq!(stats.entries_returned, 7, "returned = after the limit, not scanned");
        assert_eq!(stats.entries_scanned, 100);
    }

    #[test]
    fn range_query_with_sentinel_start_does_not_overflow() {
        // Regression: `start - range_ns` overflowed i64 for sentinel
        // starts near `i64::MIN` (debug builds panicked).
        let shards = shard_with(10);
        let mq = match parse_expr(r#"count_over_time({app="x"}[1m])"#).unwrap() {
            Expr::Metric(m) => m,
            Expr::Log(_) => panic!("expected a metric query"),
        };
        let start = i64::MIN + 1;
        let step = NANOS_PER_SEC;
        let matrix = run_range_query(&shards, &mq, start, start + 2 * step, step);
        assert!(matrix.is_empty(), "no data that far in the past");
    }
}

//! The query engine: LogQL over the shard set, scanning shards in
//! parallel (map) and merging results (reduce).

use crate::ingester::Ingester;
use omni_logql::{
    eval::{eval_metric_at, eval_metric_range, InstantVector, Matrix, RangeEntry},
    Expr, LogQuery, MetricQuery, Pipeline,
};
use omni_model::{LabelSet, LogEntry, LogRecord, Timestamp};
use std::sync::Arc;

/// Execution statistics for one query (Loki's query-stats API).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Streams whose labels matched the selector.
    pub streams_matched: usize,
    /// Entries decompressed and scanned.
    pub entries_scanned: usize,
    /// Line bytes processed.
    pub bytes_scanned: usize,
    /// Entries that survived the pipeline.
    pub entries_returned: usize,
}

/// Raw (pre-pipeline) matching entries from every shard, scanned in
/// parallel with scoped threads.
fn gather(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
) -> Vec<(LabelSet, Vec<LogEntry>)> {
    if shards.len() == 1 {
        return shards[0].query(&query.selector, start, end);
    }
    let mut out = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let selector = &query.selector;
                s.spawn(move || shard.query(selector, start, end))
            })
            .collect();
        for h in handles {
            // Invariant: shard scans are read-only and must not panic; if
            // one does, the query result would be silently partial, so
            // propagating the panic is the correct behaviour here.
            out.extend(h.join().expect("shard scan panicked")); // lint:allow(no-unwrap)
        }
    });
    out
}

/// Run a log query over `(start, end]`, returning up to `limit` records
/// sorted by timestamp (ties broken by labels for determinism).
pub fn run_log_query(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
    limit: usize,
) -> Vec<LogRecord> {
    run_log_query_with_stats(shards, query, start, end, limit).0
}

/// [`run_log_query`] plus execution statistics.
pub fn run_log_query_with_stats(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
    limit: usize,
) -> (Vec<LogRecord>, QueryStats) {
    let pipeline = Pipeline::new(query.stages.clone());
    let mut records = Vec::new();
    let mut stats = QueryStats::default();
    for (labels, entries) in gather(shards, query, start, end) {
        stats.streams_matched += 1;
        for e in entries {
            stats.entries_scanned += 1;
            stats.bytes_scanned += e.line.len();
            if let Some(p) = pipeline.process(&e.line, &labels) {
                records.push(LogRecord { labels: p.labels, entry: LogEntry::new(e.ts, p.line) });
            }
        }
    }
    records.sort_by(|a, b| a.entry.ts.cmp(&b.entry.ts).then_with(|| a.labels.cmp(&b.labels)));
    records.truncate(limit);
    stats.entries_returned = records.len();
    (records, stats)
}

/// Pipeline-processed entries for metric evaluation.
fn fetch_range_entries(
    shards: &[Arc<Ingester>],
    query: &LogQuery,
    start: Timestamp,
    end: Timestamp,
) -> Vec<RangeEntry> {
    let pipeline = Pipeline::new(query.stages.clone());
    let mut out = Vec::new();
    for (labels, entries) in gather(shards, query, start, end) {
        for e in entries {
            if let Some(p) = pipeline.process(&e.line, &labels) {
                out.push(RangeEntry {
                    ts: e.ts,
                    line_bytes: p.line.len(),
                    labels: p.labels,
                    unwrapped: p.unwrapped,
                });
            }
        }
    }
    out
}

/// Evaluate a metric query at one instant.
pub fn run_instant_query(
    shards: &[Arc<Ingester>],
    query: &MetricQuery,
    at: Timestamp,
) -> InstantVector {
    let mut fetch = |q: &LogQuery, s: Timestamp, e: Timestamp| fetch_range_entries(shards, q, s, e);
    eval_metric_at(query, at, &mut fetch)
}

/// Evaluate a metric query over a range at fixed steps (Grafana graphs).
///
/// The bottom log query's entries are fetched and pipeline-processed
/// **once** for the whole `[start - range, end]` span; each step then
/// slices the prefetched entries instead of re-decoding chunks, turning
/// an O(steps x chunks) evaluation into O(chunks + steps x entries).
pub fn run_range_query(
    shards: &[Arc<Ingester>],
    query: &MetricQuery,
    start: Timestamp,
    end: Timestamp,
    step_ns: i64,
) -> Matrix {
    let bottom = query.log_query();
    let range_ns = query.range_ns();
    let mut prefetched = fetch_range_entries(shards, bottom, start - range_ns, end);
    prefetched.sort_by_key(|e| e.ts);
    let mut fetch = |_q: &LogQuery, s: Timestamp, e: Timestamp| {
        // Binary-search the window bounds in the sorted prefetch.
        let lo = prefetched.partition_point(|entry| entry.ts <= s);
        let hi = prefetched.partition_point(|entry| entry.ts <= e);
        prefetched[lo..hi].to_vec()
    };
    eval_metric_range(query, start, end, step_ns, &mut fetch)
}

/// Evaluate a parsed expression at an instant: log queries return their
/// match count (LogCLI-style), metric queries their vector.
pub fn run_expr_instant(shards: &[Arc<Ingester>], expr: &Expr, at: Timestamp) -> InstantVector {
    match expr {
        Expr::Log(q) => {
            let records = run_log_query(shards, q, i64::MIN, at, usize::MAX);
            vec![(LabelSet::new(), records.len() as f64)]
        }
        Expr::Metric(m) => run_instant_query(shards, m, at),
    }
}

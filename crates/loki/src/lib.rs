//! A Grafana-Loki-like log aggregation engine.
//!
//! "Loki is like the Prometheus tool mentioned above but for logs. It
//! constantly evaluates Shasta events and logs ... and turns the result
//! into Prometheus-style metrics." (§IV-A). The crate provides the whole
//! Loki slice the paper's pipeline uses:
//!
//! * [`LokiCluster`] — the facade: a distributor sharding streams across
//!   N [`Ingester`]s by label fingerprint (the paper's 8-node cluster),
//!   push + query APIs;
//! * [`chunk`] — compressed chunk storage ("logs ... are compressed and
//!   stored in chunks");
//! * [`index`] — the label-only inverted index;
//! * [`ruler`] — "a component called the Ruler which is responsible for
//!   continually evaluating a set of configurable queries and performing
//!   an action based on the result".

pub mod chunk;
pub mod chunkstore;
pub mod compactor;
pub mod compress;
pub mod engine;
pub mod frontend;
pub mod index;
pub mod ingester;
pub mod limits;
pub mod ruler;
pub mod scheduler;
pub mod stream;
pub mod tenant;
pub mod wal;

pub use chunkstore::{
    ChunkStore, ColdTier, ColdTierPolicy, FetchStats, MemObjectStore, ObjectStore,
};
pub use compactor::{CompactionReport, Compactor, CompactorStats};
pub use engine::{Direction, QueryStats};
pub use frontend::{
    FrontendStats, LimitViolation, QueryContext, QueryFrontend, QueryRecord, QueryReport, SplitStat,
};
pub use ingester::{IngestError, Ingester, IngesterStats};
pub use limits::{Limits, TenantLimits};
pub use ruler::{AlertState, AlertingRule, RuleGroup, RuleNotification, Ruler};
pub use scheduler::{FairScheduler, SchedulerStats};
pub use tenant::{
    ShedReason, TenantRegistry, TenantRejection, TenantSnapshot, TenantState, TENANT_LABEL,
};

use omni_logql::{parse_expr, Expr, InstantVector, Matcher, Matrix, ParseError};
use omni_model::{LabelSet, LogEntry, LogRecord, SimClock, TenantId, Timestamp};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
pub use wal::Wal;

/// Upper bound on cached label-set fingerprints; the cache is cleared
/// wholesale when it fills (label churn past this size means the cache is
/// not earning its memory anyway).
const FP_CACHE_MAX: usize = 8_192;

/// Query-path errors.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// A log API was given a metric query or vice versa.
    WrongQueryKind(&'static str),
    /// The query frontend rejected the query for exceeding a per-query
    /// limit ([`Limits::max_entries_per_query`],
    /// [`Limits::max_bytes_scanned`], or the virtual-clock deadline).
    LimitExceeded(LimitViolation),
    /// Tenant admission control shed the query (the `429`): the tenant
    /// is over its own query rate, never because of another tenant.
    TenantRejected(TenantRejection),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::WrongQueryKind(what) => write!(f, "wrong query kind: expected {what}"),
            QueryError::LimitExceeded(v) => write!(f, "query rejected: {v}"),
            QueryError::TenantRejected(r) => write!(f, "query rejected: {r}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

/// Point-in-time crash-recovery counters for the cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Ingester crashes injected so far.
    pub crashes: u64,
    /// Records restored into fresh ingesters by WAL replay.
    pub replayed_records: u64,
    /// Pushes rerouted away from a down home shard to a live one.
    pub rerouted_records: u64,
    /// Records currently buffered across every shard WAL.
    pub wal_records: u64,
    /// Total WAL segment bytes across shards.
    pub wal_bytes: u64,
    /// Records dropped from WALs by checkpoint truncation (durable in the
    /// chunk store, no longer needed for recovery).
    pub wal_checkpoint_drops: u64,
    /// Shards currently up.
    pub shards_up: usize,
    /// Total shards.
    pub shards_total: usize,
}

/// One distributor-visible shard slot: the live ingester (replaced
/// wholesale on crash), its durable WAL, and an up/down flag.
struct ShardSlot {
    ingester: RwLock<Arc<Ingester>>,
    wal: Wal,
    up: AtomicBool,
    /// Guards WAL replay so recovery is idempotent: a second
    /// `recover_shard` for a shard that is already recovering (or up)
    /// must not replay — and thus duplicate — the same records.
    recovering: AtomicBool,
}

#[derive(Default)]
struct ClusterCounters {
    crashes: AtomicU64,
    replayed: AtomicU64,
    rerouted: AtomicU64,
    wal_checkpoint_drops: AtomicU64,
    fp_cache_hits: AtomicU64,
    fp_cache_misses: AtomicU64,
}

/// The Loki cluster: distributor + shards + query engine.
#[derive(Clone)]
pub struct LokiCluster {
    shards: Arc<Vec<ShardSlot>>,
    chunk_store: ChunkStore,
    clock: SimClock,
    limits: Limits,
    counters: Arc<ClusterCounters>,
    /// Label-set → fingerprint fast path: a stream pushes thousands of
    /// records with the same labels, so the distributor caches the hash
    /// instead of re-canonicalising every push.
    fp_cache: Arc<RwLock<HashMap<LabelSet, u64>>>,
    /// The query frontend every query API routes through: interval
    /// splitting, the split-results cache, per-query limits.
    frontend: QueryFrontend,
    /// Per-tenant limits, admission buckets, and accounting.
    tenants: Arc<TenantRegistry>,
    /// The background compaction job over the shared chunk store.
    compactor: Compactor,
    /// Virtual time of the last compaction run (`i64::MIN` = never), for
    /// [`Self::maybe_compact`]'s cadence.
    last_compaction: Arc<AtomicI64>,
}

impl LokiCluster {
    /// Bring up a cluster with `shards` ingesters (the paper runs 8).
    pub fn new(shards: usize, limits: Limits, clock: SimClock) -> Self {
        assert!(shards > 0, "need at least one ingester shard");
        let chunk_store = ChunkStore::new();
        let compactor = Compactor::new(
            chunk_store.clone(),
            limits.compact_after_ns,
            limits.compacted_target_bytes,
        );
        Self {
            shards: Arc::new(
                (0..shards)
                    .map(|i| ShardSlot {
                        ingester: RwLock::new(Arc::new(Ingester::with_shard(
                            limits.clone(),
                            Some(chunk_store.clone()),
                            i,
                            shards,
                        ))),
                        wal: Wal::new(),
                        up: AtomicBool::new(true),
                        recovering: AtomicBool::new(false),
                    })
                    .collect(),
            ),
            chunk_store,
            frontend: QueryFrontend::new(limits.clone(), clock.clone()),
            tenants: Arc::new(TenantRegistry::new(limits.tenant_defaults(), clock.clone())),
            clock,
            limits,
            counters: Arc::new(ClusterCounters::default()),
            fp_cache: Arc::new(RwLock::new(HashMap::new())),
            compactor,
            last_compaction: Arc::new(AtomicI64::new(i64::MIN)),
        }
    }

    /// The cluster's query frontend (splitting, caching, limits).
    pub fn frontend(&self) -> &QueryFrontend {
        &self.frontend
    }

    /// Fingerprint via the distributor's label-set cache. Hits skip the
    /// canonical separator-buffer hash entirely.
    fn fingerprint_cached(&self, labels: &LabelSet) -> u64 {
        if let Some(&fp) = self.fp_cache.read().get(labels) {
            self.counters.fp_cache_hits.fetch_add(1, Ordering::Relaxed);
            return fp;
        }
        let fp = labels.fingerprint();
        let mut cache = self.fp_cache.write();
        if cache.len() >= FP_CACHE_MAX {
            cache.clear();
        }
        cache.insert(labels.clone(), fp);
        self.counters.fp_cache_misses.fetch_add(1, Ordering::Relaxed);
        fp
    }

    /// `(hits, misses)` of the distributor's fingerprint cache.
    pub fn fp_cache_stats(&self) -> (u64, u64) {
        (
            self.counters.fp_cache_hits.load(Ordering::Relaxed),
            self.counters.fp_cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Crash shard `i`: its in-memory streams and head chunks are lost on
    /// the spot (the slot gets a fresh empty ingester) and the shard stops
    /// taking pushes until [`recover_shard`](Self::recover_shard). The
    /// shard's WAL and the shared chunk store survive — they are the
    /// durable tiers recovery rebuilds from.
    pub fn crash_shard(&self, i: usize) {
        let slot = &self.shards[i];
        slot.up.store(false, Ordering::SeqCst);
        // A crash interrupts any in-flight recovery; the next
        // `recover_shard` must start over, not be swallowed by the guard.
        slot.recovering.store(false, Ordering::SeqCst);
        *slot.ingester.write() = Arc::new(Ingester::with_shard(
            self.limits.clone(),
            Some(self.chunk_store.clone()),
            i,
            self.shards.len(),
        ));
        self.counters.crashes.fetch_add(1, Ordering::Relaxed);
        // Cached query results may include the lost in-memory state.
        self.frontend.invalidate_all();
    }

    /// Recover shard `i`: replay its WAL into the fresh ingester, then
    /// mark it up. Returns the number of records restored. Replay applies
    /// records in original append order, so entries the shard had rejected
    /// (out-of-order, oversized) are rejected identically on replay.
    ///
    /// Idempotent: recovering a shard that is already up (or mid-replay
    /// on another thread) is a no-op returning `0`. A crash-recovery
    /// supervisor retrying at the same WAL offset therefore cannot
    /// duplicate entries — the failure mode real Loki guards with WAL
    /// checkpoints.
    pub fn recover_shard(&self, i: usize) -> usize {
        let slot = &self.shards[i];
        if slot.up.load(Ordering::SeqCst) {
            return 0;
        }
        if slot.recovering.swap(true, Ordering::SeqCst) {
            return 0;
        }
        let ingester = slot.ingester.read().clone();
        let mut restored = 0;
        if let Ok(records) = slot.wal.replay() {
            for r in records {
                if ingester.append(r).is_ok() {
                    restored += 1;
                }
            }
        }
        self.counters.replayed.fetch_add(restored as u64, Ordering::Relaxed);
        slot.up.store(true, Ordering::SeqCst);
        slot.recovering.store(false, Ordering::SeqCst);
        // Replay writes straight into the ingester, bypassing the push
        // hooks, so the cache cannot track which windows it touched.
        self.frontend.invalidate_all();
        restored
    }

    /// Whether shard `i` is up.
    pub fn shard_up(&self, i: usize) -> bool {
        self.shards[i].up.load(Ordering::SeqCst)
    }

    /// Crash-recovery counters.
    pub fn resilience(&self) -> ResilienceStats {
        ResilienceStats {
            crashes: self.counters.crashes.load(Ordering::Relaxed),
            replayed_records: self.counters.replayed.load(Ordering::Relaxed),
            rerouted_records: self.counters.rerouted.load(Ordering::Relaxed),
            wal_records: self.shards.iter().map(|s| s.wal.record_count()).sum(),
            wal_bytes: self.shards.iter().map(|s| s.wal.bytes() as u64).sum(),
            wal_checkpoint_drops: self.counters.wal_checkpoint_drops.load(Ordering::Relaxed),
            shards_up: (0..self.shards.len()).filter(|&i| self.shard_up(i)).count(),
            shards_total: self.shards.len(),
        }
    }

    /// Checkpoint every shard's WAL against what is already durable in the
    /// chunk store: records strictly older than the shard's oldest
    /// memory-only timestamp (minus the out-of-order tolerance, since the
    /// WAL stores pre-clamp timestamps) are truncated. Down shards are
    /// skipped: their replacement ingester is empty, so "nothing
    /// memory-only" would read as "everything durable" and truncate the
    /// very records recovery needs to replay. Returns records dropped
    /// across shards.
    pub fn checkpoint_wals(&self) -> usize {
        let mut dropped = 0;
        for slot in self.shards.iter() {
            if !slot.up.load(Ordering::SeqCst) {
                continue;
            }
            let ingester = slot.ingester.read().clone();
            let bound = match ingester.min_unpersisted_ts() {
                Some(ts) => ts.saturating_sub(self.limits.out_of_order_tolerance_ns),
                // Nothing memory-only: everything accepted is durable.
                None => i64::MAX,
            };
            dropped += slot.wal.checkpoint(bound);
        }
        self.counters.wal_checkpoint_drops.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Single-shard cluster with default limits (tests, examples).
    pub fn single(clock: SimClock) -> Self {
        Self::new(1, Limits::default(), clock)
    }

    /// The cluster clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Number of ingester shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Distributor push: route by label fingerprint so one stream always
    /// lands on one shard.
    pub fn push(
        &self,
        labels: LabelSet,
        ts: Timestamp,
        line: impl Into<String>,
    ) -> Result<(), IngestError> {
        let record = LogRecord::new(labels, ts, line);
        self.push_record(record)
    }

    /// Push a pre-built record. The record is written to the serving
    /// shard's WAL *before* the in-memory insert; when the home shard is
    /// down the distributor reroutes to the next live shard (so its WAL
    /// covers the entry). With every shard down the push is rejected —
    /// callers retry.
    pub fn push_record(&self, record: LogRecord) -> Result<(), IngestError> {
        let n = self.shards.len();
        let fp = self.fingerprint_cached(&record.labels);
        let home = (fp % n as u64) as usize;
        let serving = (0..n)
            .map(|step| (home + step) % n)
            .find(|&i| self.shard_up(i))
            .ok_or(IngestError::AllShardsDown)?;
        if serving != home {
            self.counters.rerouted.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.shards[serving];
        slot.wal.append(&record);
        let ts = record.entry.ts;
        let out = slot.ingester.read().append_with_fp(record, fp);
        if out.is_ok() {
            self.frontend.note_append(ts, ts);
        }
        out
    }

    /// Push a batch with per-record outcomes (input order). Records are
    /// routed as in [`push_record`](Self::push_record), then each serving
    /// shard gets **one** WAL segment append and **one** ingester lock
    /// acquisition for its whole share of the batch — the hot path the
    /// paper's 400k msg/s ingest figure needs.
    pub fn push_record_batch(&self, records: Vec<LogRecord>) -> Vec<Result<(), IngestError>> {
        let n = self.shards.len();
        let mut out: Vec<Result<(), IngestError>> = Vec::with_capacity(records.len());
        // Per shard: original indices, fingerprints, and the records, in
        // arrival order (order within a stream must be preserved).
        let mut idxs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fps: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut recs: Vec<Vec<LogRecord>> = vec![Vec::new(); n];
        // Run fast-path: batches arrive stream-grouped (the push API and
        // the bridges batch per source), so the previous record usually
        // has this record's labels — an equality check against it skips
        // the fingerprint-cache hash for the whole run.
        let mut last: Option<(usize, u64)> = None;
        // Conservative invalidation span for the whole batch (computed
        // over routed records; rejects only over-invalidate).
        let mut ts_span: Option<(Timestamp, Timestamp)> = None;
        for (i, record) in records.into_iter().enumerate() {
            out.push(Err(IngestError::AllShardsDown));
            ts_span = Some(match ts_span {
                Some((lo, hi)) => (lo.min(record.entry.ts), hi.max(record.entry.ts)),
                None => (record.entry.ts, record.entry.ts),
            });
            let fp = match last {
                Some((s, fp))
                    if recs[s].last().is_some_and(|prev| prev.labels == record.labels) =>
                {
                    fp
                }
                _ => self.fingerprint_cached(&record.labels),
            };
            let home = (fp % n as u64) as usize;
            let Some(serving) = (0..n).map(|step| (home + step) % n).find(|&s| self.shard_up(s))
            else {
                continue;
            };
            if serving != home {
                self.counters.rerouted.fetch_add(1, Ordering::Relaxed);
            }
            idxs[serving].push(i);
            fps[serving].push(fp);
            recs[serving].push(record);
            last = Some((serving, fp));
        }
        for (shard, records) in recs.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let slot = &self.shards[shard];
            slot.wal.append_batch(&records);
            let batch: Vec<(u64, LogRecord)> = fps[shard].iter().copied().zip(records).collect();
            let results = slot.ingester.read().append_batch(batch);
            for (&i, res) in idxs[shard].iter().zip(results) {
                out[i] = res;
            }
        }
        if let Some((lo, hi)) = ts_span {
            self.frontend.note_append(lo, hi);
        }
        out
    }

    /// Push one stream frame: a label set plus its entries, the shape the
    /// Loki push protocol and the source bridges actually produce (a
    /// bridge drains many lines from one source per pump round). The
    /// whole frame pays for fingerprinting, routing, the WAL record, and
    /// the ingester lock **once**; each entry then costs only the stream
    /// append itself. Returns one result per entry in input order.
    pub fn push_stream_batch(
        &self,
        labels: LabelSet,
        entries: Vec<LogEntry>,
    ) -> Vec<Result<(), IngestError>> {
        let n = self.shards.len();
        let fp = self.fingerprint_cached(&labels);
        let home = (fp % n as u64) as usize;
        let Some(serving) = (0..n).map(|step| (home + step) % n).find(|&i| self.shard_up(i)) else {
            return vec![Err(IngestError::AllShardsDown); entries.len()];
        };
        if serving != home {
            self.counters.rerouted.fetch_add(entries.len() as u64, Ordering::Relaxed);
        }
        let slot = &self.shards[serving];
        slot.wal.append_run(&labels, &entries);
        let ts_span = entries.iter().map(|e| e.ts).fold(None, |acc, ts| match acc {
            Some((lo, hi)) => Some((ts.min(lo), ts.max(hi))),
            None => Some((ts, ts)),
        });
        let out = slot.ingester.read().append_run(fp, &labels, entries);
        if let Some((lo, hi)) = ts_span {
            self.frontend.note_append(lo, hi);
        }
        out
    }

    /// The per-tenant limit registry: overrides, admission state, and
    /// accounting snapshots.
    pub fn tenants(&self) -> &TenantRegistry {
        &self.tenants
    }

    /// Per-tenant accounting for every tenant that has touched the
    /// cluster, sorted by tenant id.
    pub fn tenant_snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants.snapshots()
    }

    fn tenant_rejected_ingest(tenant: &TenantId, reason: ShedReason) -> IngestError {
        IngestError::TenantRejected(TenantRejection { tenant: tenant.clone(), reason })
    }

    /// Tenant-scoped [`push`](Self::push): the record passes the tenant's
    /// admission control (ingest token bucket, then the active-stream
    /// cap) and lands with the reserved [`TENANT_LABEL`] injected, which
    /// is what scopes storage, queries, and retention to the tenant.
    pub fn push_as(
        &self,
        tenant: &TenantId,
        labels: LabelSet,
        ts: Timestamp,
        line: impl Into<String>,
    ) -> Result<(), IngestError> {
        self.push_record_as(tenant, LogRecord::new(labels, ts, line))
    }

    /// Tenant-scoped [`push_record`](Self::push_record). Sheds with a
    /// typed [`IngestError::TenantRejected`] when the tenant is over its
    /// own limits; the admission ledger keeps
    /// `offered == accepted + rejected` (accepted means "passed tenant
    /// admission" — a downstream ordering/size rejection does not
    /// retroactively un-admit).
    pub fn push_record_as(
        &self,
        tenant: &TenantId,
        mut record: LogRecord,
    ) -> Result<(), IngestError> {
        let state = self.tenants.state(tenant);
        if let Err(reason) = state.admit_ingest(self.clock.now(), 1) {
            return Err(Self::tenant_rejected_ingest(tenant, reason));
        }
        record.labels.insert(TENANT_LABEL, tenant.as_str());
        let fp = self.fingerprint_cached(&record.labels);
        if let Err(reason) = state.admit_stream(fp, 1) {
            return Err(Self::tenant_rejected_ingest(tenant, reason));
        }
        state.note_accepted(1);
        self.push_record(record)
    }

    /// Tenant-scoped [`push_stream_batch`](Self::push_stream_batch): the
    /// whole frame is admitted or shed atomically (one bucket draw for
    /// all entries, one stream-cap check), then pays the usual
    /// once-per-frame routing costs.
    pub fn push_stream_batch_as(
        &self,
        tenant: &TenantId,
        mut labels: LabelSet,
        entries: Vec<LogEntry>,
    ) -> Vec<Result<(), IngestError>> {
        let n = entries.len();
        let state = self.tenants.state(tenant);
        if let Err(reason) = state.admit_ingest(self.clock.now(), n as u64) {
            return vec![Err(Self::tenant_rejected_ingest(tenant, reason)); n];
        }
        labels.insert(TENANT_LABEL, tenant.as_str());
        let fp = self.fingerprint_cached(&labels);
        if let Err(reason) = state.admit_stream(fp, n as u64) {
            return vec![Err(Self::tenant_rejected_ingest(tenant, reason)); n];
        }
        state.note_accepted(n as u64);
        self.push_stream_batch(labels, entries)
    }

    /// Push a batch (the Loki push API takes batches of streams). Every
    /// record is attempted; returns the accepted count, or the first
    /// error if any record was rejected.
    pub fn push_batch(&self, records: Vec<LogRecord>) -> Result<usize, IngestError> {
        let mut accepted = 0;
        let mut first_err = None;
        for r in self.push_record_batch(records) {
            match r {
                Ok(()) => accepted += 1,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(accepted),
        }
    }

    /// Run a log query string over `(start, end]` in Loki's default
    /// backward direction: up to `limit` records, **newest first**.
    pub fn query_logs(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
    ) -> Result<Vec<LogRecord>, QueryError> {
        self.query_logs_directed(query, start, end, limit, Direction::default())
    }

    /// [`query_logs`](Self::query_logs) with an explicit direction:
    /// `Forward` returns (and keeps, when the limit bites) the oldest
    /// records, `Backward` the newest.
    pub fn query_logs_directed(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
        direction: Direction,
    ) -> Result<Vec<LogRecord>, QueryError> {
        match parse_expr(query)? {
            Expr::Log(q) => Ok(self
                .frontend
                .run_log_query(&self.shards(), query, &q, start, end, limit, direction)?
                .0),
            Expr::Metric(_) => Err(QueryError::WrongQueryKind("log query")),
        }
    }

    /// Run a log query and return execution statistics alongside the
    /// records (Loki's query-stats response). Backward direction; cached
    /// splits report the stats of the execution that filled them.
    pub fn query_logs_with_stats(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
    ) -> Result<(Vec<LogRecord>, QueryStats), QueryError> {
        match parse_expr(query)? {
            Expr::Log(q) => self.frontend.run_log_query(
                &self.shards(),
                query,
                &q,
                start,
                end,
                limit,
                Direction::default(),
            ),
            Expr::Metric(_) => Err(QueryError::WrongQueryKind("log query")),
        }
    }

    /// [`query_logs_with_stats`](Self::query_logs_with_stats) returning
    /// the full [`QueryReport`]: the merged statistics plus the
    /// per-split breakdown (cache hits and misses, per-split scan
    /// statistics, scheduler queue waits) — Loki's statistics object on
    /// the query response.
    pub fn query_logs_with_report(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
    ) -> Result<(Vec<LogRecord>, QueryReport), QueryError> {
        let ctx = QueryContext::anonymous(&self.limits);
        match parse_expr(query)? {
            Expr::Log(q) => self.frontend.run_log_query_report(
                &self.shards(),
                &ctx,
                query,
                &q,
                start,
                end,
                limit,
                Direction::default(),
            ),
            Expr::Metric(_) => Err(QueryError::WrongQueryKind("log query")),
        }
    }

    /// All stream label sets matching a bare selector (the
    /// `/loki/api/v1/series` surface).
    pub fn series(&self, selector: &str) -> Result<Vec<LabelSet>, QueryError> {
        let sel = omni_logql::parse_selector(selector)?;
        let mut out: Vec<LabelSet> =
            self.shards().iter().flat_map(|s| s.select_streams(&sel)).collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Evaluate a metric query string at one instant.
    pub fn query_instant(&self, query: &str, at: Timestamp) -> Result<InstantVector, QueryError> {
        match parse_expr(query)? {
            Expr::Metric(m) => Ok(self.frontend.run_instant_query(&self.shards(), &m, at)?.0),
            Expr::Log(_) => Err(QueryError::WrongQueryKind("metric query")),
        }
    }

    /// Evaluate a metric query string over a range at `step_ns` intervals
    /// (split and cached by the frontend).
    pub fn query_range(
        &self,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<Matrix, QueryError> {
        match parse_expr(query)? {
            Expr::Metric(m) => {
                Ok(self.frontend.run_range_query(&self.shards(), query, &m, start, end, step_ns)?.0)
            }
            Expr::Log(_) => Err(QueryError::WrongQueryKind("metric query")),
        }
    }

    /// Admit one query for `tenant` and build its execution context, or
    /// shed with a typed rejection.
    fn admit_query(&self, tenant: &TenantId) -> Result<QueryContext, QueryError> {
        let state = self.tenants.state(tenant);
        match state.admit_query(self.clock.now()) {
            Ok(()) => Ok(QueryContext::for_tenant(tenant.clone(), &state.limits())),
            Err(reason) => {
                Err(QueryError::TenantRejected(TenantRejection { tenant: tenant.clone(), reason }))
            }
        }
    }

    /// The scope matcher confining a parsed query to one tenant's
    /// streams. Isolation is structural: with this matcher injected the
    /// selector physically cannot match another tenant's streams (or
    /// unscoped legacy streams, which carry no tenant label at all).
    fn tenant_matcher(tenant: &TenantId) -> Matcher {
        Matcher::eq(TENANT_LABEL, tenant.as_str())
    }

    /// Tenant-scoped [`query_logs`](Self::query_logs): admission by the
    /// tenant's query bucket, per-tenant entry/byte limits, the
    /// tenant-partitioned results cache, and fair-scheduled splits.
    pub fn query_logs_as(
        &self,
        tenant: &TenantId,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
    ) -> Result<Vec<LogRecord>, QueryError> {
        self.query_logs_directed_as(tenant, query, start, end, limit, Direction::default())
    }

    /// [`query_logs_as`](Self::query_logs_as) with an explicit direction.
    pub fn query_logs_directed_as(
        &self,
        tenant: &TenantId,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        limit: usize,
        direction: Direction,
    ) -> Result<Vec<LogRecord>, QueryError> {
        let ctx = self.admit_query(tenant)?;
        match parse_expr(query)? {
            Expr::Log(mut q) => {
                q.selector.matchers.push(Self::tenant_matcher(tenant));
                Ok(self
                    .frontend
                    .run_log_query_ctx(
                        &self.shards(),
                        &ctx,
                        query,
                        &q,
                        start,
                        end,
                        limit,
                        direction,
                    )?
                    .0)
            }
            Expr::Metric(_) => Err(QueryError::WrongQueryKind("log query")),
        }
    }

    /// Tenant-scoped [`query_instant`](Self::query_instant).
    pub fn query_instant_as(
        &self,
        tenant: &TenantId,
        query: &str,
        at: Timestamp,
    ) -> Result<InstantVector, QueryError> {
        let ctx = self.admit_query(tenant)?;
        match parse_expr(query)? {
            Expr::Metric(mut m) => {
                m.log_query_mut().selector.matchers.push(Self::tenant_matcher(tenant));
                Ok(self.frontend.run_instant_query_ctx(&self.shards(), &ctx, &m, at)?.0)
            }
            Expr::Log(_) => Err(QueryError::WrongQueryKind("metric query")),
        }
    }

    /// Tenant-scoped [`query_range`](Self::query_range).
    pub fn query_range_as(
        &self,
        tenant: &TenantId,
        query: &str,
        start: Timestamp,
        end: Timestamp,
        step_ns: i64,
    ) -> Result<Matrix, QueryError> {
        let ctx = self.admit_query(tenant)?;
        match parse_expr(query)? {
            Expr::Metric(mut m) => {
                m.log_query_mut().selector.matchers.push(Self::tenant_matcher(tenant));
                Ok(self
                    .frontend
                    .run_range_query_ctx(&self.shards(), &ctx, query, &m, start, end, step_ns)?
                    .0)
            }
            Expr::Log(_) => Err(QueryError::WrongQueryKind("metric query")),
        }
    }

    /// Periodic maintenance: seal aged head chunks on every shard.
    pub fn tick(&self) {
        let now = self.clock.now();
        for s in self.shards() {
            s.tick(now);
        }
    }

    /// Force-flush all head chunks.
    pub fn flush(&self) {
        for s in self.shards() {
            s.flush();
        }
    }

    /// Drain the fill ratios — uncompressed size over the configured
    /// chunk target — of every chunk sealed since the last call, across
    /// all shards. Ratios near 1.0 mean chunks seal full (by size);
    /// well under 1.0 means they sealed early (by age).
    pub fn take_seal_fill_ratios(&self) -> Vec<f64> {
        let target = self.limits.chunk_target_bytes.max(1) as f64;
        self.shards()
            .iter()
            .flat_map(|s| s.take_seal_sizes())
            .map(|sz| sz as f64 / target)
            .collect()
    }

    /// Move sealed chunks older than `older_than_ns` (relative to now)
    /// from ingester memory to the chunk object store, then checkpoint the
    /// WALs — offloaded records are durable and no longer need replay
    /// coverage. Returns chunks moved.
    pub fn offload(&self, older_than_ns: i64) -> usize {
        let horizon = self.clock.now() - older_than_ns;
        let moved = self.shards().iter().map(|s| s.offload(horizon)).sum();
        self.checkpoint_wals();
        moved
    }

    /// The disk-tier chunk store (for accounting).
    pub fn chunk_store(&self) -> &ChunkStore {
        &self.chunk_store
    }

    /// The background compactor (for accounting).
    pub fn compactor(&self) -> &Compactor {
        &self.compactor
    }

    /// Per-stream retention horizon resolver: a stream carrying the
    /// [`TENANT_LABEL`] ages out at its tenant's resolved horizon,
    /// unscoped streams at the cluster horizon.
    fn retention_resolver(&self) -> impl Fn(&LabelSet) -> i64 + Sync + '_ {
        |labels: &LabelSet| match labels.get(TENANT_LABEL) {
            Some(t) => self.tenants.retention_ns_for(t),
            None => self.limits.retention_ns,
        }
    }

    /// Run one compaction cycle now: per-tenant retention deletes against
    /// both storage tiers, then merge + dedup + demote of cold sealed
    /// chunks (see [`compactor::Compactor::run`]). If dedup removed
    /// replayed duplicates, cached query results over the affected window
    /// are invalidated — merging alone preserves results exactly and
    /// costs no cache.
    pub fn compact(&self) -> CompactionReport {
        let now = self.clock.now();
        let report = self.compactor.run(now, &self.retention_resolver());
        if let Some((lo, hi)) = report.dedup_window {
            self.frontend.note_compaction(lo, hi);
        }
        if report.retention_deleted > 0 {
            let min_retention = self.limits.retention_ns.min(self.tenants.min_retention_ns());
            self.frontend.note_retention(now.saturating_sub(min_retention));
        }
        self.last_compaction.store(now, Ordering::Release);
        report
    }

    /// Run a compaction cycle if at least
    /// [`Limits::compaction_interval_ns`] of virtual time passed since
    /// the last one (`0` disables the cadence). This is the hook the
    /// simulation step loop calls every tick, mirroring how real Loki's
    /// compactor wakes on `compaction_interval`.
    pub fn maybe_compact(&self) -> Option<CompactionReport> {
        let interval = self.limits.compaction_interval_ns;
        if interval <= 0 {
            return None;
        }
        let now = self.clock.now();
        let last = self.last_compaction.load(Ordering::Acquire);
        if last != i64::MIN && now.saturating_sub(last) < interval {
            return None;
        }
        Some(self.compact())
    }

    /// Enforce retention on every shard; returns (chunks, streams)
    /// dropped. Retention is tenant-aware: a stream carrying the
    /// [`TENANT_LABEL`] ages out at its tenant's resolved horizon
    /// (default → override); unscoped streams age out at the cluster
    /// horizon. Deleting one tenant's expired data can never touch
    /// another tenant's streams, because the horizon is resolved per
    /// stream from its own labels.
    pub fn enforce_retention(&self) -> (usize, usize) {
        let now = self.clock.now();
        let resolve = self.retention_resolver();
        let mut total = (0, 0);
        let mut dropped: Vec<(u64, Option<TenantId>)> = Vec::new();
        for s in self.shards() {
            let (c, dead) = s.enforce_retention_by(now, &resolve);
            total.0 += c;
            total.1 += dead.len();
            dropped.extend(
                dead.into_iter()
                    .map(|(fp, labels)| (fp, labels.get(TENANT_LABEL).map(TenantId::new))),
            );
        }
        // The storage tiers: one compactor walk over the shared store's
        // series index (both tiers, per-stream horizons) instead of the
        // old eager per-shard sweeps.
        total.0 += self.compactor.apply_retention(now, &resolve);
        // Retired streams free their tenants' active-stream cap room.
        self.tenants.note_streams_dropped(&dropped);
        // Cached windows reaching at or past the most aggressive horizon
        // any tenant runs under — including ones spanning it — may now
        // disagree with storage.
        let min_retention = self.limits.retention_ns.min(self.tenants.min_retention_ns());
        self.frontend.note_retention(now.saturating_sub(min_retention));
        total
    }

    /// Aggregate shard stats.
    pub fn stats(&self) -> IngesterStats {
        let mut agg = IngesterStats::default();
        for s in self.shards() {
            let st = s.stats();
            agg.entries += st.entries;
            agg.bytes += st.bytes;
            agg.chunks_sealed += st.chunks_sealed;
            agg.rejected += st.rejected;
        }
        agg
    }

    /// Total active streams.
    pub fn stream_count(&self) -> usize {
        self.shards().iter().map(|s| s.stream_count()).sum()
    }

    /// Total chunks (sealed + open heads).
    pub fn chunk_count(&self) -> usize {
        self.shards().iter().map(|s| s.chunk_count()).sum()
    }

    /// Compressed bytes held across shards.
    pub fn compressed_bytes(&self) -> usize {
        self.shards().iter().map(|s| s.compressed_bytes()).sum()
    }

    /// Uncompressed payload bytes across shards.
    pub fn uncompressed_bytes(&self) -> usize {
        self.shards().iter().map(|s| s.uncompressed_bytes()).sum()
    }

    /// Label-index entries across shards (C4's "small index").
    pub fn index_entries(&self) -> usize {
        self.shards().iter().map(|s| s.index_entries()).sum()
    }

    /// Approximate index bytes across shards.
    pub fn index_bytes(&self) -> usize {
        self.shards().iter().map(|s| s.index_bytes()).sum()
    }

    /// Sorted, deduplicated label names across shards (the Grafana label
    /// browser's first dropdown).
    pub fn label_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shards().iter().flat_map(|s| s.label_names()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Sorted, deduplicated values of one label across shards.
    pub fn label_values(&self, name: &str) -> Vec<String> {
        let mut vals: Vec<String> =
            self.shards().iter().flat_map(|s| s.label_values(name)).collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Snapshot of the live ingester behind every slot. Queries fan out
    /// over all of them — a freshly-crashed shard's replacement is empty
    /// and contributes nothing until recovery replays its WAL.
    pub(crate) fn shards(&self) -> Vec<Arc<Ingester>> {
        self.shards.iter().map(|s| s.ingester.read().clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::{labels, NANOS_PER_SEC};

    fn cluster(shards: usize) -> LokiCluster {
        LokiCluster::new(shards, Limits::default(), SimClock::starting_at(0))
    }

    #[test]
    fn push_and_query_logs() {
        let c = cluster(4);
        for i in 0..20 {
            c.push(labels!("app" => "fm"), i * NANOS_PER_SEC, format!("event {i}")).unwrap();
        }
        let out = c.query_logs(r#"{app="fm"} |= "event 1""#, -1, 100 * NANOS_PER_SEC, 100).unwrap();
        // "event 1" and "event 1x".
        assert_eq!(out.len(), 11);
        // Loki's default direction is backward: newest first.
        assert!(out.windows(2).all(|w| w[0].entry.ts >= w[1].entry.ts));
        // The forward direction yields the same set, oldest first.
        let fwd = c
            .query_logs_directed(
                r#"{app="fm"} |= "event 1""#,
                -1,
                100 * NANOS_PER_SEC,
                100,
                Direction::Forward,
            )
            .unwrap();
        assert!(fwd.windows(2).all(|w| w[0].entry.ts <= w[1].entry.ts));
        assert_eq!(fwd.len(), out.len());
    }

    #[test]
    fn same_stream_lands_on_one_shard() {
        let c = cluster(8);
        for i in 0..100 {
            c.push(labels!("app" => "steady"), i, "line").unwrap();
        }
        let populated = c.shards().iter().filter(|s| s.stream_count() > 0).count();
        assert_eq!(populated, 1);
        assert_eq!(c.stream_count(), 1);
    }

    #[test]
    fn different_streams_spread_across_shards() {
        let c = cluster(8);
        for i in 0..200 {
            c.push(labels!("id" => format!("{i}")), 1, "line").unwrap();
        }
        let populated = c.shards().iter().filter(|s| s.stream_count() > 0).count();
        assert!(populated >= 6, "only {populated} shards populated");
    }

    #[test]
    fn instant_metric_query() {
        let c = cluster(2);
        let ts = 3_600 * NANOS_PER_SEC;
        c.push(labels!("data_type" => "redfish_event"), ts, "CabinetLeakDetected ...").unwrap();
        let v = c
            .query_instant(
                r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" [60m])) by (data_type)"#,
                ts + NANOS_PER_SEC,
            )
            .unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 1.0);
    }

    #[test]
    fn wrong_query_kind_errors() {
        let c = cluster(1);
        assert!(matches!(
            c.query_logs(r#"count_over_time({a="b"}[1m])"#, 0, 1, 1),
            Err(QueryError::WrongQueryKind(_))
        ));
        assert!(matches!(c.query_instant(r#"{a="b"}"#, 0), Err(QueryError::WrongQueryKind(_))));
        assert!(matches!(c.query_instant("{oops", 0), Err(QueryError::Parse(_))));
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let c = cluster(4);
        for i in 0..50 {
            c.push(labels!("id" => format!("{}", i % 10)), i, "0123456789").unwrap();
        }
        let st = c.stats();
        assert_eq!(st.entries, 50);
        assert_eq!(st.bytes, 500);
    }

    #[test]
    fn retention_via_cluster() {
        let limits = Limits { retention_ns: 10, chunk_target_bytes: 4, ..Default::default() };
        let c = LokiCluster::new(2, limits, SimClock::starting_at(0));
        c.push(labels!("a" => "1"), 1, "aaaaaa").unwrap();
        c.clock().set(1_000);
        let (chunks, _) = c.enforce_retention();
        assert!(chunks >= 1);
    }

    #[test]
    fn label_values_across_shards() {
        let c = cluster(4);
        c.push(labels!("app" => "fm"), 1, "x").unwrap();
        c.push(labels!("app" => "loki"), 1, "x").unwrap();
        c.push(labels!("app" => "fm", "env" => "prod"), 2, "y").unwrap();
        assert_eq!(c.label_values("app"), vec!["fm", "loki"]);
        assert_eq!(c.label_names(), vec!["app", "env"]);
    }

    #[test]
    fn offloaded_chunks_remain_queryable() {
        let limits = Limits { chunk_target_bytes: 64, ..Default::default() };
        let c = LokiCluster::new(2, limits, SimClock::starting_at(0));
        for i in 0..100 {
            c.push(labels!("app" => "x"), i * NANOS_PER_SEC, format!("event number {i}")).unwrap();
        }
        c.clock().set(200 * NANOS_PER_SEC);
        let before_mem = c.compressed_bytes();
        let moved = c.offload(50 * NANOS_PER_SEC);
        assert!(moved > 0, "sealed chunks should offload");
        assert!(c.compressed_bytes() < before_mem, "memory should shrink");
        assert!(c.chunk_store().objects().object_count() > 0);
        // Every entry is still queryable across both tiers.
        let out = c.query_logs(r#"{app="x"}"#, -1, 200 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 100);
        // Ordered (backward: newest first) and exact.
        assert!(out.windows(2).all(|w| w[0].entry.ts >= w[1].entry.ts));
    }

    #[test]
    fn retention_reaches_the_disk_tier() {
        let limits = Limits {
            chunk_target_bytes: 32,
            retention_ns: 100 * NANOS_PER_SEC,
            ..Default::default()
        };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        for i in 0..50 {
            c.push(labels!("app" => "x"), i * NANOS_PER_SEC, "0123456789abcdef").unwrap();
        }
        c.clock().set(60 * NANOS_PER_SEC);
        c.offload(0);
        assert!(c.chunk_store().objects().object_count() > 0);
        // Advance far past retention; both tiers drain.
        c.clock().set(1_000 * NANOS_PER_SEC);
        c.enforce_retention();
        assert_eq!(c.chunk_store().objects().object_count(), 0);
        assert!(c.query_logs(r#"{app="x"}"#, -1, 2_000 * NANOS_PER_SEC, 10).unwrap().is_empty());
    }

    #[test]
    fn compaction_preserves_query_results_across_tiers() {
        let limits = Limits {
            chunk_target_bytes: 64,
            compact_after_ns: 0,
            compacted_target_bytes: 1024 * 1024,
            ..Default::default()
        };
        let c = LokiCluster::new(2, limits, SimClock::starting_at(0));
        for i in 0..100 {
            c.push(labels!("app" => "x"), i * NANOS_PER_SEC, format!("event number {i}")).unwrap();
        }
        c.clock().set(200 * NANOS_PER_SEC);
        c.offload(0);
        let hot_objects = c.chunk_store().objects().list("chunks/").len();
        assert!(hot_objects > 1, "need several sealed objects to merge");
        let before = c.query_logs(r#"{app="x"}"#, -1, 200 * NANOS_PER_SEC, usize::MAX).unwrap();
        let report = c.compact();
        assert!(report.chunks_merged > 0);
        assert!(c.chunk_store().cold().object_count() > 0, "compacted objects demoted to cold");
        assert!(
            c.chunk_store().objects().list("chunks/").len() < hot_objects,
            "merged hot sources deleted"
        );
        // Cold-cache re-read must return byte-for-byte identical results.
        c.frontend().invalidate_all();
        let (after, stats) =
            c.query_logs_with_stats(r#"{app="x"}"#, -1, 200 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(before, after, "compaction must not change query results");
        assert!(stats.cold_chunks_touched > 0, "the read was served from the cold tier");
    }

    #[test]
    fn compaction_dedups_replayed_chunks_and_invalidates_cache() {
        let limits = Limits { compact_after_ns: 0, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        // Simulate the WAL-replay artifact: the same sealed chunk
        // persisted twice (crash between persist and checkpoint).
        let entries: Vec<omni_model::LogEntry> = (0..10)
            .map(|i| omni_model::LogEntry::new(i * NANOS_PER_SEC, format!("replayed {i}")))
            .collect();
        let chunk = chunk::SealedChunk::from_entries(&entries);
        let labels = labels!("app" => "replay");
        let fp = labels.fingerprint();
        c.chunk_store().register_series(fp, &labels);
        c.chunk_store().persist(fp, &chunk);
        c.chunk_store().persist(fp, &chunk);
        c.clock().set(100 * NANOS_PER_SEC);
        let dup = c.query_logs(r#"{app="replay"}"#, -1, 100 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(dup.len(), 20, "pre-compaction reads see the duplicate");
        let report = c.compact();
        assert_eq!(report.duplicates_dropped, 1);
        // The duplicate's window was invalidated in the results cache, so
        // the same query now reflects storage, not the stale cache.
        let clean = c.query_logs(r#"{app="replay"}"#, -1, 100 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(clean.len(), 10);
    }

    #[test]
    fn maybe_compact_honors_virtual_clock_cadence() {
        let limits = Limits {
            compaction_interval_ns: 100 * NANOS_PER_SEC,
            compact_after_ns: 0,
            ..Default::default()
        };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        assert!(c.maybe_compact().is_some(), "first call always runs");
        assert!(c.maybe_compact().is_none(), "within the interval: skipped");
        c.clock().set(50 * NANOS_PER_SEC);
        assert!(c.maybe_compact().is_none());
        c.clock().set(150 * NANOS_PER_SEC);
        assert!(c.maybe_compact().is_some(), "interval elapsed: runs again");
        assert_eq!(c.compactor().stats().runs, 2);
    }

    #[test]
    fn query_stats_account_for_scanning() {
        let c = cluster(2);
        for i in 0..50 {
            c.push(labels!("app" => "a"), i + 1, "xxxxxxxxxx").unwrap();
        }
        for i in 0..50 {
            c.push(labels!("app" => "b"), i + 1, "leak here").unwrap();
        }
        // (0, 1_000] sits inside one aligned split interval, so the
        // frontend executes it as a single sub-query and the per-split
        // stream accounting stays exact.
        let (records, stats) =
            c.query_logs_with_stats(r#"{app=~"a|b"} |= "leak""#, 0, 1_000, usize::MAX).unwrap();
        assert_eq!(records.len(), 50);
        assert_eq!(stats.streams_matched, 2);
        assert_eq!(stats.entries_scanned, 100);
        assert_eq!(stats.entries_returned, 50);
        assert!(stats.bytes_scanned >= 100 * 9);
    }

    #[test]
    fn series_api_lists_streams() {
        let c = cluster(4);
        c.push(labels!("app" => "fm", "cluster" => "p"), 1, "x").unwrap();
        c.push(labels!("app" => "loki", "cluster" => "p"), 1, "x").unwrap();
        let series = c.series(r#"{cluster="p"}"#).unwrap();
        assert_eq!(series.len(), 2);
        assert!(c.series(r#"{cluster="other"}"#).unwrap().is_empty());
        assert!(c.series(r#"{bad"#).is_err());
    }

    #[test]
    fn range_query_prefetch_matches_per_step_instants() {
        let c = cluster(4);
        for i in 0..500 {
            c.push(
                labels!("app" => format!("a{}", i % 5)),
                i * NANOS_PER_SEC,
                format!("event {i}"),
            )
            .unwrap();
        }
        let q = r#"sum(count_over_time({app=~"a.*"}[60s])) by (app)"#;
        let step = 30 * NANOS_PER_SEC;
        let end = 500 * NANOS_PER_SEC;
        let matrix = c.query_range(q, 0, end, step).unwrap();
        // Cross-check every sample against an independent instant query.
        for (labels, samples) in &matrix {
            for s in samples {
                let v = c.query_instant(q, s.ts).unwrap();
                let expected =
                    v.iter().find(|(l, _)| l == labels).map(|(_, val)| *val).unwrap_or(0.0);
                assert_eq!(s.value, expected, "at ts {} for {labels}", s.ts);
            }
        }
    }

    #[test]
    fn parallel_query_matches_serial() {
        let mk = |shards| {
            let c = cluster(shards);
            for i in 0..300 {
                c.push(
                    labels!("id" => format!("{}", i % 30), "cluster" => "perlmutter"),
                    i,
                    format!("line {i}"),
                )
                .unwrap();
            }
            let mut v = c.query_logs(r#"{cluster="perlmutter"}"#, -1, 1_000, usize::MAX).unwrap();
            v.sort_by(|a, b| a.entry.ts.cmp(&b.entry.ts).then_with(|| a.labels.cmp(&b.labels)));
            v
        };
        assert_eq!(mk(1), mk(8));
    }

    #[test]
    fn crash_then_recover_replays_wal() {
        let c = cluster(1);
        for i in 0..100 {
            c.push(labels!("app" => "fm"), i * NANOS_PER_SEC, format!("pre-crash {i}")).unwrap();
        }
        c.crash_shard(0);
        // In-memory state is gone: the fresh ingester serves nothing.
        assert!(!c.shard_up(0));
        assert!(c
            .query_logs(r#"{app="fm"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX)
            .unwrap()
            .is_empty());

        let restored = c.recover_shard(0);
        assert_eq!(restored, 100);
        assert!(c.shard_up(0));
        let out = c.query_logs(r#"{app="fm"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 100, "every pre-crash line must be queryable again");

        let r = c.resilience();
        assert_eq!(r.crashes, 1);
        assert_eq!(r.replayed_records, 100);
        assert_eq!(r.shards_up, 1);
    }

    #[test]
    fn pushes_reroute_around_down_shard() {
        let c = cluster(2);
        let stream = labels!("app" => "steady");
        let home = (stream.fingerprint() % 2) as usize;
        let other = 1 - home;
        for i in 0..10 {
            c.push(stream.clone(), i, "before").unwrap();
        }
        c.crash_shard(home);
        for i in 10..20 {
            c.push(stream.clone(), i, "during").unwrap();
        }
        assert_eq!(c.resilience().rerouted_records, 10);
        // The rerouted entries landed (and were WAL'd) on the live shard.
        let out = c.query_logs(r#"{app="steady"}"#, -1, 1_000, usize::MAX).unwrap();
        assert_eq!(out.len(), 10);
        assert!(c.shards()[other].stream_count() >= 1);

        // After recovery everything — pre-crash and rerouted — is served.
        c.recover_shard(home);
        let out = c.query_logs(r#"{app="steady"}"#, -1, 1_000, usize::MAX).unwrap();
        assert_eq!(out.len(), 20, "zero loss across crash + reroute + recovery");
    }

    #[test]
    fn all_shards_down_rejects_push() {
        let c = cluster(2);
        c.crash_shard(0);
        c.crash_shard(1);
        assert!(matches!(c.push(labels!("a" => "b"), 1, "x"), Err(IngestError::AllShardsDown)));
        c.recover_shard(0);
        c.push(labels!("a" => "b"), 2, "x").unwrap();
    }

    #[test]
    fn batched_push_matches_per_record_push() {
        let serial = cluster(4);
        let batched = cluster(4);
        let records: Vec<LogRecord> = (0..200)
            .map(|i| LogRecord::new(labels!("id" => format!("{}", i % 10)), i, format!("line {i}")))
            .collect();
        for r in records.clone() {
            serial.push_record(r).unwrap();
        }
        let results = batched.push_record_batch(records);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(serial.stats(), batched.stats());
        assert_eq!(serial.resilience().wal_records, batched.resilience().wal_records);
        let q = |c: &LokiCluster| c.query_logs(r#"{id=~".+"}"#, -1, 1_000, usize::MAX).unwrap();
        assert_eq!(q(&serial), q(&batched));
    }

    #[test]
    fn batched_push_reports_per_record_errors() {
        let c = cluster(2);
        let good = LogRecord::new(labels!("a" => "1"), 1, "ok");
        let bad = LogRecord::new(LabelSet::new(), 1, "no labels");
        let results = c.push_record_batch(vec![good, bad]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(IngestError::EmptyLabels)));
        assert!(matches!(
            c.push_batch(vec![LogRecord::new(LabelSet::new(), 2, "x")]),
            Err(IngestError::EmptyLabels)
        ));
    }

    #[test]
    fn batched_push_rejects_when_all_shards_down() {
        let c = cluster(2);
        c.crash_shard(0);
        c.crash_shard(1);
        let results = c.push_record_batch(vec![LogRecord::new(labels!("a" => "b"), 1, "x")]);
        assert!(matches!(results[0], Err(IngestError::AllShardsDown)));
    }

    #[test]
    fn fingerprint_cache_hits_on_repeated_streams() {
        let c = cluster(2);
        for i in 0..50 {
            c.push(labels!("app" => "steady"), i, "x").unwrap();
        }
        let (hits, misses) = c.fp_cache_stats();
        assert_eq!(misses, 1, "one cold miss for the stream's label set");
        assert_eq!(hits, 49);
    }

    #[test]
    fn wal_shrinks_after_flush_and_offload_cycle() {
        let limits = Limits { chunk_target_bytes: 64, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        for i in 0..50 {
            c.push(labels!("app" => "x"), i * NANOS_PER_SEC, format!("event number {i}")).unwrap();
        }
        let before = c.resilience();
        assert_eq!(before.wal_records, 50);
        assert!(before.wal_bytes > 0);

        // Seal everything and move it to the durable chunk store; offload
        // checkpoints the WAL behind it.
        c.clock().set(100 * NANOS_PER_SEC);
        c.flush();
        let moved = c.offload(0);
        assert!(moved > 0);

        let after = c.resilience();
        assert!(
            after.wal_bytes < before.wal_bytes,
            "WAL must be strictly smaller after a flush cycle ({} -> {})",
            before.wal_bytes,
            after.wal_bytes
        );
        assert_eq!(after.wal_records, 0, "all records persisted, WAL fully truncated");
        assert_eq!(after.wal_checkpoint_drops, 50);

        // Recovery after the checkpoint must not duplicate offloaded data.
        c.crash_shard(0);
        c.recover_shard(0);
        let out = c.query_logs(r#"{app="x"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 50, "no duplicates from replaying checkpointed WAL");
    }

    #[test]
    fn checkpoint_never_touches_a_down_shards_wal() {
        // Maintenance (offload → checkpoint) keeps running while a shard
        // is down; the crashed shard's WAL is the only copy of its
        // memory-only records and must survive until recovery replays it.
        let c = cluster(1);
        for i in 0..25 {
            c.push(labels!("app" => "fm"), i * NANOS_PER_SEC, format!("pre-crash {i}")).unwrap();
        }
        c.crash_shard(0);
        c.clock().set(3_600 * NANOS_PER_SEC);
        c.offload(0); // runs checkpoint_wals internally
        assert_eq!(c.resilience().wal_records, 25, "down shard's WAL must be preserved");

        assert_eq!(c.recover_shard(0), 25);
        let out = c.query_logs(r#"{app="fm"}"#, -1, 4_000 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 25, "zero loss despite maintenance during downtime");
    }

    #[test]
    fn checkpoint_keeps_unpersisted_tail() {
        // Only part of the data offloads; the WAL must keep the rest.
        let limits = Limits { chunk_target_bytes: 32, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        for i in 0..40 {
            c.push(labels!("app" => "x"), i * NANOS_PER_SEC, "0123456789abcdef").unwrap();
        }
        c.clock().set(40 * NANOS_PER_SEC);
        // Offload only chunks entirely older than t=20s; newer sealed
        // chunks and the head stay in memory.
        c.offload(20 * NANOS_PER_SEC);
        let r = c.resilience();
        assert!(r.wal_records > 0, "unpersisted tail must stay in the WAL");
        assert!(r.wal_records < 40, "persisted prefix must be dropped");

        // A crash right now loses only what the WAL still covers — which
        // is everything not yet offloaded, so recovery is lossless.
        c.crash_shard(0);
        c.recover_shard(0);
        let out = c.query_logs(r#"{app="x"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn retention_treats_memory_and_disk_tiers_identically() {
        // Regression: unsealed head data used to outlive retention in the
        // memory tier while the identical workload, flushed and offloaded
        // to the disk tier, was deleted — the same records had two
        // different lifetimes depending on where they happened to sit.
        let run = |through_disk: bool| {
            let limits = Limits { retention_ns: 100 * NANOS_PER_SEC, ..Default::default() };
            let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
            for i in 0..50 {
                c.push(labels!("app" => "x"), i * NANOS_PER_SEC, format!("event {i}")).unwrap();
            }
            if through_disk {
                c.flush();
                c.clock().set(60 * NANOS_PER_SEC);
                c.offload(0);
                assert!(c.chunk_store().objects().object_count() > 0);
            }
            c.clock().set(500 * NANOS_PER_SEC);
            c.enforce_retention();
            c.query_logs(r#"{app="x"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX).unwrap()
        };
        let memory = run(false);
        let disk = run(true);
        assert_eq!(memory, disk, "both tiers must expire the same data");
        assert!(memory.is_empty(), "everything is past the horizon");
    }

    #[test]
    fn frontend_caches_repeated_queries() {
        // 2.5 hours of data: the default 1h split interval cuts the
        // window into three aligned sub-queries.
        let c = cluster(2);
        for i in 0..150 {
            c.push(labels!("app" => "fm"), i * 60 * NANOS_PER_SEC, format!("event {i}")).unwrap();
        }
        let end = 150 * 60 * NANOS_PER_SEC;
        let q = r#"{app="fm"}"#;
        let (cold, cold_stats) = c.query_logs_with_stats(q, 0, end, usize::MAX).unwrap();
        let s = c.frontend().stats();
        assert_eq!(s.splits_total, 3, "2.5h window over 1h intervals");
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.cache_hits, 0);

        let (warm, warm_stats) = c.query_logs_with_stats(q, 0, end, usize::MAX).unwrap();
        let s = c.frontend().stats();
        assert_eq!(s.cache_hits, 3, "second refresh is all cache hits");
        assert_eq!(s.cache_misses, 3);
        assert_eq!(warm, cold, "cache must be invisible in the results");
        assert_eq!(warm_stats, cold_stats, "cached hits report truthful stats");
        assert!(c.frontend().take_bytes_saved().iter().sum::<u64>() > 0);
    }

    #[test]
    fn query_report_breaks_stats_down_per_split() {
        // Same shape as the cache test: three aligned 1h splits.
        let c = cluster(2);
        for i in 0..150 {
            c.push(labels!("app" => "fm"), i * 60 * NANOS_PER_SEC, format!("event {i}")).unwrap();
        }
        let end = 150 * 60 * NANOS_PER_SEC;
        let q = r#"{app="fm"}"#;

        let (cold, report) = c.query_logs_with_report(q, 0, end, usize::MAX).unwrap();
        assert_eq!(cold.len(), 149, "ts 0 is outside the exclusive start");
        assert_eq!(report.splits.len(), 3);
        assert_eq!(report.cache_misses, 3);
        assert_eq!(report.cache_hits, 0);
        // Split windows ascend and tile the query window.
        assert!(report.splits.windows(2).all(|w| w[0].end == w[1].start));
        // The merged stats are exactly the per-split sums.
        let mut summed = QueryStats::default();
        for sp in &report.splits {
            assert!(!sp.cached);
            summed.absorb(sp.stats);
        }
        summed.entries_returned = report.stats.entries_returned;
        assert_eq!(summed, report.stats);
        // The deepened fields made it through the frontend merge.
        assert_eq!(report.stats.entries_scanned, 149);

        // A warm refresh reports the same merged stats, now as hits.
        let (warm, warm_report) = c.query_logs_with_report(q, 0, end, usize::MAX).unwrap();
        assert_eq!(warm, cold);
        assert_eq!(warm_report.stats, report.stats);
        assert_eq!(warm_report.cache_hits, 3);
        assert_eq!(warm_report.cache_misses, 0);
        assert!(warm_report.splits.iter().all(|sp| sp.cached && sp.queue_wait_vns == 0));

        // Both queries were recorded for the slow-query pipeline.
        let records = c.frontend().take_query_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].query, q);
        assert_eq!(records[0].report.cache_misses, 3);
        assert_eq!(records[1].report.cache_hits, 3);
        assert!(c.frontend().take_query_records().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn out_of_order_append_into_cached_window_invalidates() {
        // Streams are ordered per-stream only: a brand-new stream may
        // appear at an arbitrarily old timestamp, landing inside an
        // already-cached window.
        let c = cluster(2);
        c.push(labels!("app" => "fm", "host" => "a"), 1_000 * NANOS_PER_SEC, "early").unwrap();
        let q = r#"{app="fm"}"#;
        let window = 2_000 * NANOS_PER_SEC;
        assert_eq!(c.query_logs(q, 0, window, usize::MAX).unwrap().len(), 1);
        assert_eq!(c.query_logs(q, 0, window, usize::MAX).unwrap().len(), 1); // cached

        c.push(labels!("app" => "fm", "host" => "b"), 500 * NANOS_PER_SEC, "late arrival").unwrap();
        let out = c.query_logs(q, 0, window, usize::MAX).unwrap();
        assert_eq!(out.len(), 2, "cached window must drop when data lands inside it");
    }

    #[test]
    fn cached_window_spanning_retention_horizon_invalidates() {
        let limits = Limits { retention_ns: 100 * NANOS_PER_SEC, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        for i in 0..50 {
            c.push(labels!("app" => "x"), i * NANOS_PER_SEC, format!("event {i}")).unwrap();
        }
        let q = r#"{app="x"}"#;
        let window = 1_000 * NANOS_PER_SEC;
        assert_eq!(c.query_logs(q, -1, window, usize::MAX).unwrap().len(), 50);
        assert_eq!(c.query_logs(q, -1, window, usize::MAX).unwrap().len(), 50); // cached

        // The horizon sweeps across the cached window.
        c.clock().set(500 * NANOS_PER_SEC);
        c.enforce_retention();
        assert!(
            c.query_logs(q, -1, window, usize::MAX).unwrap().is_empty(),
            "retention must invalidate the cached window it swept through"
        );
    }

    #[test]
    fn per_query_limits_reject_with_typed_errors() {
        // max_entries_per_query caps what a query may even request.
        let limits = Limits { max_entries_per_query: 5, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        c.push(labels!("a" => "b"), 1, "x").unwrap();
        assert!(matches!(
            c.query_logs(r#"{a="b"}"#, 0, 10, 6),
            Err(QueryError::LimitExceeded(LimitViolation::Entries { limit: 5, requested: 6 }))
        ));
        assert_eq!(c.query_logs(r#"{a="b"}"#, 0, 10, 5).unwrap().len(), 1);

        // max_bytes_scanned bounds the line bytes a query may touch.
        let limits = Limits { max_bytes_scanned: 20, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        for i in 0..10 {
            c.push(labels!("a" => "b"), i, "0123456789").unwrap();
        }
        assert!(matches!(
            c.query_logs(r#"{a="b"}"#, -1, 100, usize::MAX),
            Err(QueryError::LimitExceeded(LimitViolation::BytesScanned { limit: 20, .. }))
        ));
        assert!(matches!(
            c.query_instant(r#"count_over_time({a="b"}[1m])"#, 100),
            Err(QueryError::LimitExceeded(LimitViolation::BytesScanned { .. }))
        ));

        // A zero deadline budget rejects deterministically on the
        // virtual clock (it never advances mid-query in the simulation).
        let limits = Limits { query_timeout_ns: 0, ..Default::default() };
        let c = LokiCluster::new(1, limits, SimClock::starting_at(0));
        c.push(labels!("a" => "b"), 1, "x").unwrap();
        assert!(matches!(
            c.query_logs(r#"{a="b"}"#, 0, 10, 1),
            Err(QueryError::LimitExceeded(LimitViolation::Deadline { .. }))
        ));
        assert_eq!(c.frontend().stats().rejected_total, 1);
        // The typed violation renders a readable message.
        let err = c.query_logs(r#"{a="b"}"#, 0, 10, 1).unwrap_err();
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn split_range_query_matches_unsplit() {
        let split = cluster(2);
        let unsplit = {
            let limits = Limits { split_interval_ns: 0, ..Default::default() };
            LokiCluster::new(2, limits, SimClock::starting_at(0))
        };
        for c in [&split, &unsplit] {
            for i in 0..300 {
                c.push(
                    labels!("app" => format!("a{}", i % 3)),
                    i * 60 * NANOS_PER_SEC,
                    format!("event {i}"),
                )
                .unwrap();
            }
        }
        let q = r#"sum(count_over_time({app=~"a.*"}[10m])) by (app)"#;
        let end = 300 * 60 * NANOS_PER_SEC;
        let step = 7 * 60 * NANOS_PER_SEC;
        let a = split.query_range(q, 0, end, step).unwrap();
        let b = unsplit.query_range(q, 0, end, step).unwrap();
        assert_eq!(a, b, "interval splitting must not change results");
        assert!(split.frontend().stats().splits_total > 1, "the window did split");
        assert_eq!(unsplit.frontend().stats().splits_total, 1);
        // Warm pass: identical again.
        assert_eq!(split.query_range(q, 0, end, step).unwrap(), b);
        assert!(split.frontend().stats().cache_hits > 0);
    }

    #[test]
    fn repeated_recovery_does_not_duplicate_entries() {
        // Regression: a supervisor retrying recovery at the same WAL
        // offset used to replay the whole WAL into the already-recovered
        // ingester, duplicating every entry.
        let c = cluster(1);
        for i in 0..50 {
            c.push(labels!("app" => "fm"), i * NANOS_PER_SEC, format!("line {i}")).unwrap();
        }
        c.crash_shard(0);
        assert_eq!(c.recover_shard(0), 50);
        assert_eq!(c.recover_shard(0), 0, "second recovery must be a no-op");
        assert_eq!(c.recover_shard(0), 0);
        let out = c.query_logs(r#"{app="fm"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 50, "replay must not duplicate entries");
        // A genuine second crash still recovers (and still exactly once).
        c.crash_shard(0);
        assert_eq!(c.recover_shard(0), 50);
        assert_eq!(c.recover_shard(0), 0);
        let out = c.query_logs(r#"{app="fm"}"#, -1, 1_000 * NANOS_PER_SEC, usize::MAX).unwrap();
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn tenant_queries_are_structurally_isolated() {
        let c = cluster(2);
        let alice = TenantId::new("alice");
        let bob = TenantId::new("bob");
        for i in 0..10 {
            c.push_as(&alice, labels!("app" => "fm"), i, format!("alice {i}")).unwrap();
        }
        for i in 0..5 {
            c.push_as(&bob, labels!("app" => "fm"), i, format!("bob {i}")).unwrap();
        }
        // Same query text, same labels — each tenant sees only its own.
        let a = c.query_logs_as(&alice, r#"{app="fm"}"#, -1, 1_000, 100).unwrap();
        let b = c.query_logs_as(&bob, r#"{app="fm"}"#, -1, 1_000, 100).unwrap();
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|r| r.entry.line.starts_with("alice")));
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|r| r.entry.line.starts_with("bob")));
        // A tenant with no data gets nothing, even with warm caches for
        // the same query text (the cache is tenant-partitioned).
        let nobody = TenantId::new("nobody");
        assert!(c.query_logs_as(&nobody, r#"{app="fm"}"#, -1, 1_000, 100).unwrap().is_empty());
        // The unscoped admin surface still sees everything.
        assert_eq!(c.query_logs(r#"{app="fm"}"#, -1, 1_000, 100).unwrap().len(), 15);
        // Metric queries are scoped the same way.
        let av = c.query_instant_as(&alice, r#"count_over_time({app="fm"}[1m])"#, 999).unwrap();
        assert_eq!(av.len(), 1);
        assert_eq!(av[0].1, 10.0);
    }

    #[test]
    fn noisy_tenant_burst_never_rejects_other_tenants() {
        let c = cluster(2);
        let noisy = TenantId::new("noisy");
        let calm = TenantId::new("calm");
        c.tenants().set_override(
            &noisy,
            TenantLimits { ingest_rate_per_sec: 0, ingest_burst: 3, ..TenantLimits::default() },
        );
        let mut noisy_ok = 0;
        for i in 0..10 {
            match c.push_as(&noisy, labels!("app" => "burst"), i, "spam") {
                Ok(()) => noisy_ok += 1,
                Err(IngestError::TenantRejected(r)) => {
                    assert_eq!(r.tenant, noisy);
                    assert_eq!(r.reason, ShedReason::IngestRateExceeded);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            // Tenant A's burst must never shed tenant B's ingest.
            c.push_as(&calm, labels!("app" => "steady"), i, "fine").unwrap();
        }
        assert_eq!(noisy_ok, 3, "burst capacity admits exactly the burst");
        let snaps = c.tenant_snapshots();
        for s in &snaps {
            assert_eq!(
                s.ingest_offered,
                s.ingest_accepted + s.ingest_rejected,
                "ledger must balance for {}",
                s.tenant
            );
        }
        let noisy_snap = snaps.iter().find(|s| s.tenant == noisy).unwrap();
        assert_eq!((noisy_snap.ingest_accepted, noisy_snap.ingest_rejected), (3, 7));
        let calm_snap = snaps.iter().find(|s| s.tenant == calm).unwrap();
        assert_eq!((calm_snap.ingest_accepted, calm_snap.ingest_rejected), (10, 0));
        // Queries shed the same way: the noisy tenant's own rate gate,
        // never the calm tenant's.
        c.tenants().set_override(
            &noisy,
            TenantLimits { query_rate_per_sec: 0, query_burst: 0, ..TenantLimits::default() },
        );
        assert!(matches!(
            c.query_logs_as(&noisy, r#"{app="burst"}"#, -1, 1_000, 10),
            Err(QueryError::TenantRejected(r)) if r.reason == ShedReason::QueryRateExceeded
        ));
        assert_eq!(c.query_logs_as(&calm, r#"{app="steady"}"#, -1, 1_000, 100).unwrap().len(), 10);
    }

    #[test]
    fn zero_limit_tenant_is_fully_disabled() {
        let c = cluster(1);
        let off = TenantId::new("disabled");
        c.tenants().set_override(&off, TenantLimits::zero());
        assert!(matches!(
            c.push_as(&off, labels!("app" => "x"), 0, "nope"),
            Err(IngestError::TenantRejected(_))
        ));
        assert!(matches!(
            c.query_logs_as(&off, r#"{app="x"}"#, -1, 1, 1),
            Err(QueryError::TenantRejected(_))
        ));
        // Re-enabling mid-session works (hot reload).
        c.tenants().clear_override(&off);
        c.push_as(&off, labels!("app" => "x"), 0, "back").unwrap();
        assert_eq!(c.query_logs_as(&off, r#"{app="x"}"#, -1, 1, 10).unwrap().len(), 1);
    }

    #[test]
    fn stream_cap_sheds_new_streams_only() {
        let c = cluster(2);
        let t = TenantId::new("capped");
        c.tenants()
            .set_override(&t, TenantLimits { max_active_streams: 2, ..TenantLimits::default() });
        c.push_as(&t, labels!("app" => "a"), 0, "x").unwrap();
        c.push_as(&t, labels!("app" => "b"), 0, "x").unwrap();
        // Existing streams keep ingesting; a third stream is shed.
        c.push_as(&t, labels!("app" => "a"), 1, "x").unwrap();
        assert!(matches!(
            c.push_as(&t, labels!("app" => "c"), 0, "x"),
            Err(IngestError::TenantRejected(r)) if r.reason == ShedReason::MaxActiveStreams
        ));
        let snap = &c.tenant_snapshots()[0];
        assert_eq!(snap.active_streams, 2);
        assert_eq!(snap.ingest_offered, snap.ingest_accepted + snap.ingest_rejected);
    }

    #[test]
    fn per_tenant_retention_never_leaks_across_tenants() {
        let limits = Limits { chunk_target_bytes: 4, ..Default::default() };
        let c = LokiCluster::new(2, limits, SimClock::starting_at(0));
        let short = TenantId::new("short");
        let long = TenantId::new("long");
        c.tenants().set_override(
            &short,
            TenantLimits { retention_ns: 10 * NANOS_PER_SEC, ..TenantLimits::default() },
        );
        for i in 0..5 {
            c.push_as(&short, labels!("app" => "fm"), i * NANOS_PER_SEC, "shortlived").unwrap();
            c.push_as(&long, labels!("app" => "fm"), i * NANOS_PER_SEC, "longlived").unwrap();
        }
        c.flush();
        c.clock().set(100 * NANOS_PER_SEC);
        let (chunks, _) = c.enforce_retention();
        assert!(chunks > 0, "short tenant's chunks must age out");
        assert!(
            c.query_logs_as(&short, r#"{app="fm"}"#, -1, i64::MAX - 1, 100).unwrap().is_empty(),
            "short tenant's data past its horizon must be gone"
        );
        assert_eq!(
            c.query_logs_as(&long, r#"{app="fm"}"#, -1, i64::MAX - 1, 100).unwrap().len(),
            5,
            "one tenant's retention must never delete another tenant's data"
        );
    }

    #[test]
    fn hot_reload_mid_burst_takes_effect_immediately() {
        let c = cluster(1);
        let t = TenantId::new("team");
        c.tenants().set_override(
            &t,
            TenantLimits { ingest_rate_per_sec: 0, ingest_burst: 2, ..TenantLimits::default() },
        );
        c.push_as(&t, labels!("a" => "1"), 0, "x").unwrap();
        c.push_as(&t, labels!("a" => "1"), 1, "x").unwrap();
        assert!(c.push_as(&t, labels!("a" => "1"), 2, "x").is_err(), "burst exhausted");
        // Operator raises the limit mid-burst; the very next push admits.
        c.tenants().set_override(
            &t,
            TenantLimits { ingest_rate_per_sec: 0, ingest_burst: 8, ..TenantLimits::default() },
        );
        for i in 3..9 {
            c.push_as(&t, labels!("a" => "1"), i, "x").unwrap();
        }
        let snap = &c.tenant_snapshots()[0];
        assert_eq!(
            (snap.ingest_offered, snap.ingest_accepted, snap.ingest_rejected),
            (9, 8, 1),
            "ledger must survive the reload"
        );
    }

    #[test]
    fn tenant_batch_push_admits_or_sheds_atomically() {
        let c = cluster(1);
        let t = TenantId::new("bulk");
        c.tenants().set_override(
            &t,
            TenantLimits { ingest_rate_per_sec: 0, ingest_burst: 5, ..TenantLimits::default() },
        );
        let entries: Vec<LogEntry> = (0..4).map(|i| LogEntry::new(i, format!("l{i}"))).collect();
        let out = c.push_stream_batch_as(&t, labels!("app" => "fm"), entries);
        assert!(out.iter().all(|r| r.is_ok()));
        // Next frame of 4 exceeds the remaining budget of 1: the whole
        // frame sheds (no partial admit).
        let entries: Vec<LogEntry> = (4..8).map(|i| LogEntry::new(i, format!("l{i}"))).collect();
        let out = c.push_stream_batch_as(&t, labels!("app" => "fm"), entries);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| matches!(r, Err(IngestError::TenantRejected(_)))));
        let snap = &c.tenant_snapshots()[0];
        assert_eq!((snap.ingest_offered, snap.ingest_accepted, snap.ingest_rejected), (8, 4, 4));
    }
}

//! Per-tenant state: limit resolution, admission control, and accounting.
//!
//! Real Loki scopes every request with `X-Scope-OrgID` and resolves
//! per-tenant overrides on top of the default limits. The reproduction
//! does the same: a [`TenantRegistry`] owns one [`TenantState`] per
//! tenant, created lazily with the cluster defaults and hot-reloadable
//! with [`TenantRegistry::set_override`]. Admission decisions are typed
//! sheds ([`ShedReason`], surfaced as `TenantRejected` errors — the
//! `429` of the simulation) and every decision is counted so the ledger
//! invariant `offered == accepted + rejected` is checkable from
//! self-telemetry.

use crate::limits::TenantLimits;
use omni_model::{SimClock, TenantId, Timestamp, TokenBucket};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reserved stream label carrying the owning tenant, in the spirit of the
/// `__name__`-style internal labels. Tenant-scoped pushes inject it and
/// tenant-scoped queries match on it, which is what makes isolation
/// structural rather than advisory: a tenant's selector physically cannot
/// match another tenant's streams.
pub const TENANT_LABEL: &str = "__tenant__";

/// Why an admission-controlled request was shed. Every variant is a
/// deliberate, typed `429`-style rejection — never a panic, never a
/// silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's ingest token bucket is empty.
    IngestRateExceeded,
    /// Admitting the record would create a stream beyond the tenant's
    /// `max_active_streams`.
    MaxActiveStreams,
    /// The tenant's query token bucket is empty.
    QueryRateExceeded,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShedReason::IngestRateExceeded => "ingest rate exceeded",
            ShedReason::MaxActiveStreams => "max active streams reached",
            ShedReason::QueryRateExceeded => "query rate exceeded",
        })
    }
}

/// The payload of a `TenantRejected` error: who was shed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRejection {
    /// The tenant whose own limit was hit.
    pub tenant: TenantId,
    /// Which limit.
    pub reason: ShedReason,
}

impl fmt::Display for TenantRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {} rejected: {} (tenant_rejected)", self.tenant, self.reason)
    }
}

/// Point-in-time accounting for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Who.
    pub tenant: TenantId,
    /// Ingest records offered for admission.
    pub ingest_offered: u64,
    /// Ingest records admitted.
    pub ingest_accepted: u64,
    /// Ingest records shed by admission control.
    pub ingest_rejected: u64,
    /// Queries offered for admission.
    pub queries_offered: u64,
    /// Queries shed by admission control.
    pub queries_rejected: u64,
    /// Streams currently attributed to the tenant.
    pub active_streams: usize,
}

/// Live state for one tenant: resolved limits, admission buckets, the
/// set of active streams, and the admission ledger.
pub struct TenantState {
    tenant: TenantId,
    limits: RwLock<TenantLimits>,
    ingest_bucket: RwLock<TokenBucket>,
    query_bucket: RwLock<TokenBucket>,
    streams: Mutex<HashSet<u64>>,
    ingest_offered: AtomicU64,
    ingest_accepted: AtomicU64,
    ingest_rejected: AtomicU64,
    queries_offered: AtomicU64,
    queries_rejected: AtomicU64,
}

impl TenantState {
    fn new(tenant: TenantId, limits: TenantLimits, now: Timestamp) -> Self {
        let ingest = TokenBucket::new(limits.ingest_rate_per_sec, limits.ingest_burst, now);
        let query = TokenBucket::new(limits.query_rate_per_sec, limits.query_burst, now);
        Self {
            tenant,
            limits: RwLock::new(limits),
            ingest_bucket: RwLock::new(ingest),
            query_bucket: RwLock::new(query),
            streams: Mutex::new(HashSet::new()),
            ingest_offered: AtomicU64::new(0),
            ingest_accepted: AtomicU64::new(0),
            ingest_rejected: AtomicU64::new(0),
            queries_offered: AtomicU64::new(0),
            queries_rejected: AtomicU64::new(0),
        }
    }

    /// Hot reload: swap limits and rebuild the buckets (new rate takes
    /// effect immediately, starting full) while the admission ledger and
    /// stream set carry over untouched.
    fn reload(&self, limits: TenantLimits, now: Timestamp) {
        *self.ingest_bucket.write() =
            TokenBucket::new(limits.ingest_rate_per_sec, limits.ingest_burst, now);
        *self.query_bucket.write() =
            TokenBucket::new(limits.query_rate_per_sec, limits.query_burst, now);
        *self.limits.write() = limits;
    }

    /// Resolved limits as of now.
    pub fn limits(&self) -> TenantLimits {
        self.limits.read().clone()
    }

    /// Admit `n` ingest records at `now`, counting the outcome. The error
    /// carries the reason so the caller can surface a typed rejection.
    pub fn admit_ingest(&self, now: Timestamp, n: u64) -> Result<(), ShedReason> {
        self.ingest_offered.fetch_add(n, Ordering::Relaxed);
        if self.ingest_bucket.read().try_acquire(now, n) {
            Ok(())
        } else {
            self.ingest_rejected.fetch_add(n, Ordering::Relaxed);
            Err(ShedReason::IngestRateExceeded)
        }
    }

    /// Account `n` rate-admitted records that then hit a downstream
    /// admission check (the stream cap): offered already counted, so this
    /// flips them to rejected.
    fn reject_admitted(&self, n: u64) {
        self.ingest_rejected.fetch_add(n, Ordering::Relaxed);
    }

    /// Mark `n` records fully admitted.
    pub fn note_accepted(&self, n: u64) {
        self.ingest_accepted.fetch_add(n, Ordering::Relaxed);
    }

    /// Admit the stream `fp` (registering it) or shed if the record would
    /// push the tenant past `max_active_streams`. Existing streams are
    /// always admitted — the cap bounds growth, it does not evict.
    pub fn admit_stream(&self, fp: u64, n: u64) -> Result<(), ShedReason> {
        let cap = self.limits.read().max_active_streams;
        let mut streams = self.streams.lock();
        if streams.contains(&fp) {
            return Ok(());
        }
        if streams.len() >= cap {
            drop(streams);
            self.reject_admitted(n);
            return Err(ShedReason::MaxActiveStreams);
        }
        streams.insert(fp);
        Ok(())
    }

    /// Admit one query at `now`, counting the outcome.
    pub fn admit_query(&self, now: Timestamp) -> Result<(), ShedReason> {
        self.queries_offered.fetch_add(1, Ordering::Relaxed);
        if self.query_bucket.read().try_acquire(now, 1) {
            Ok(())
        } else {
            self.queries_rejected.fetch_add(1, Ordering::Relaxed);
            Err(ShedReason::QueryRateExceeded)
        }
    }

    /// Forget streams that retention deleted, freeing cap room.
    fn forget_streams(&self, fps: &[u64]) {
        let mut streams = self.streams.lock();
        for fp in fps {
            streams.remove(fp);
        }
    }

    /// Current accounting.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            tenant: self.tenant.clone(),
            ingest_offered: self.ingest_offered.load(Ordering::Relaxed),
            ingest_accepted: self.ingest_accepted.load(Ordering::Relaxed),
            ingest_rejected: self.ingest_rejected.load(Ordering::Relaxed),
            queries_offered: self.queries_offered.load(Ordering::Relaxed),
            queries_rejected: self.queries_rejected.load(Ordering::Relaxed),
            active_streams: self.streams.lock().len(),
        }
    }
}

/// All tenants known to a cluster: default limits plus per-tenant
/// overrides, resolved default → override exactly once per tenant and
/// re-resolved on hot reload.
pub struct TenantRegistry {
    defaults: TenantLimits,
    clock: SimClock,
    states: RwLock<HashMap<TenantId, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// A registry where unknown tenants run under `defaults`.
    pub fn new(defaults: TenantLimits, clock: SimClock) -> Self {
        Self { defaults, clock, states: RwLock::new(HashMap::new()) }
    }

    /// The state for `tenant`, created under the default limits on first
    /// touch.
    pub fn state(&self, tenant: &TenantId) -> Arc<TenantState> {
        if let Some(st) = self.states.read().get(tenant) {
            return st.clone();
        }
        let mut states = self.states.write();
        states
            .entry(tenant.clone())
            .or_insert_with(|| {
                Arc::new(TenantState::new(tenant.clone(), self.defaults.clone(), self.clock.now()))
            })
            .clone()
    }

    /// Install (or replace) an override for `tenant`. Takes effect
    /// immediately, even mid-burst: buckets are rebuilt at the new rate,
    /// the admission ledger carries over.
    pub fn set_override(&self, tenant: &TenantId, limits: TenantLimits) {
        self.state(tenant).reload(limits, self.clock.now());
    }

    /// Drop `tenant`'s override, returning it to the defaults.
    pub fn clear_override(&self, tenant: &TenantId) {
        self.state(tenant).reload(self.defaults.clone(), self.clock.now());
    }

    /// Resolved limits for `tenant` (default → override).
    pub fn limits(&self, tenant: &TenantId) -> TenantLimits {
        match self.states.read().get(tenant) {
            Some(st) => st.limits(),
            None => self.defaults.clone(),
        }
    }

    /// Retention horizon for a tenant named by its label value, without
    /// materialising state for unknown tenants.
    pub fn retention_ns_for(&self, tenant: &str) -> i64 {
        match self.states.read().get(&TenantId::new(tenant)) {
            Some(st) => st.limits.read().retention_ns,
            None => self.defaults.retention_ns,
        }
    }

    /// The shortest retention any tenant (or the default) runs under —
    /// the most aggressive horizon, used to invalidate caches safely.
    pub fn min_retention_ns(&self) -> i64 {
        let mut min = self.defaults.retention_ns;
        for st in self.states.read().values() {
            min = min.min(st.limits.read().retention_ns);
        }
        min
    }

    /// Free stream-cap room for streams retention deleted. `owner_of`
    /// names the tenant a fingerprint belonged to (from its labels).
    pub fn note_streams_dropped(&self, dropped: &[(u64, Option<TenantId>)]) {
        let mut by_tenant: HashMap<&TenantId, Vec<u64>> = HashMap::new();
        for (fp, owner) in dropped {
            if let Some(t) = owner {
                by_tenant.entry(t).or_default().push(*fp);
            }
        }
        let states = self.states.read();
        for (tenant, fps) in by_tenant {
            if let Some(st) = states.get(tenant) {
                st.forget_streams(&fps);
            }
        }
    }

    /// Accounting for every known tenant, sorted by tenant id.
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        let mut out: Vec<TenantSnapshot> =
            self.states.read().values().map(|st| st.snapshot()).collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Known tenant ids, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self.states.read().keys().cloned().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> TenantRegistry {
        TenantRegistry::new(TenantLimits::default(), SimClock::new())
    }

    #[test]
    fn defaults_resolve_for_unknown_tenants() {
        let reg = registry();
        let t = TenantId::new("team-a");
        assert_eq!(reg.limits(&t), TenantLimits::default());
        assert!(reg.tenants().is_empty(), "lookup alone must not materialise state");
    }

    #[test]
    fn override_resolution_and_hot_reload_keep_ledger() {
        let reg = registry();
        let t = TenantId::new("team-a");
        reg.set_override(
            &t,
            TenantLimits { ingest_rate_per_sec: 0, ingest_burst: 2, ..TenantLimits::default() },
        );
        let st = reg.state(&t);
        assert!(st.admit_ingest(0, 1).is_ok());
        assert!(st.admit_ingest(0, 1).is_ok());
        assert_eq!(st.admit_ingest(0, 1), Err(ShedReason::IngestRateExceeded));
        st.note_accepted(2);
        // Hot reload mid-burst: new bucket admits again, ledger carries over.
        reg.set_override(
            &t,
            TenantLimits { ingest_rate_per_sec: 0, ingest_burst: 10, ..TenantLimits::default() },
        );
        assert!(st.admit_ingest(0, 1).is_ok());
        st.note_accepted(1);
        let snap = st.snapshot();
        assert_eq!((snap.ingest_offered, snap.ingest_accepted, snap.ingest_rejected), (4, 3, 1));
        assert_eq!(snap.ingest_offered, snap.ingest_accepted + snap.ingest_rejected);
        // Clearing returns to (unmetered) defaults.
        reg.clear_override(&t);
        for _ in 0..100 {
            assert!(st.admit_ingest(0, 1).is_ok());
        }
    }

    #[test]
    fn zero_limit_tenant_sheds_everything() {
        let reg = registry();
        let t = TenantId::new("disabled");
        reg.set_override(&t, TenantLimits::zero());
        let st = reg.state(&t);
        assert_eq!(st.admit_ingest(i64::MAX, 1), Err(ShedReason::IngestRateExceeded));
        assert_eq!(st.admit_query(i64::MAX), Err(ShedReason::QueryRateExceeded));
        let snap = st.snapshot();
        assert_eq!(snap.ingest_offered, snap.ingest_accepted + snap.ingest_rejected);
        assert_eq!(snap.ingest_rejected, 1);
        assert_eq!(snap.queries_rejected, 1);
    }

    #[test]
    fn stream_cap_binds_and_retention_frees_room() {
        let reg = registry();
        let t = TenantId::new("team-a");
        reg.set_override(&t, TenantLimits { max_active_streams: 2, ..TenantLimits::default() });
        let st = reg.state(&t);
        assert!(st.admit_stream(1, 1).is_ok());
        assert!(st.admit_stream(2, 1).is_ok());
        assert!(st.admit_stream(1, 1).is_ok(), "existing stream always admitted");
        assert_eq!(st.admit_stream(3, 1), Err(ShedReason::MaxActiveStreams));
        assert_eq!(st.snapshot().active_streams, 2);
        reg.note_streams_dropped(&[(1, Some(t.clone()))]);
        assert!(st.admit_stream(3, 1).is_ok(), "retention freed cap room");
    }

    #[test]
    fn min_retention_tracks_overrides() {
        let reg = registry();
        assert_eq!(reg.min_retention_ns(), TenantLimits::default().retention_ns);
        let t = TenantId::new("short");
        reg.set_override(&t, TenantLimits { retention_ns: 123, ..TenantLimits::default() });
        assert_eq!(reg.min_retention_ns(), 123);
        assert_eq!(reg.retention_ns_for("short"), 123);
        assert_eq!(reg.retention_ns_for("other"), TenantLimits::default().retention_ns);
    }
}

//! Block compression for chunk storage.
//!
//! "Log data is compressed and stored in chunks, thus a small index and
//! compressed chunks significantly reduce the costs for storage and the
//! log query times" (§III-A). This module implements the codec from
//! scratch: an LZ77-style byte compressor (hash-chain match finder with
//! one-step lazy matching) plus LEB128 varints and zigzag encoding used by
//! the chunk entry layout.
//!
//! Wire format of the compressed stream, token by token:
//!
//! * `0x00..=0x7f` — literal run: the control byte is the run length
//!   (1–127), followed by that many literal bytes;
//! * `0x80..=0xff` — match: length = `(ctrl & 0x7f) + MIN_MATCH`, followed
//!   by a 2-byte little-endian back-distance (1–65535).

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length one token can carry.
const MAX_MATCH: usize = 127 + MIN_MATCH;
/// Window size (maximum back-distance).
const WINDOW: usize = 65_535;
/// Maximum hash-chain candidates examined per position.
const CHAIN_DEPTH: usize = 8;
/// A match this long is "good enough": stop walking the chain and skip
/// the lazy one-step lookahead (zlib's `nice_length` idea — the tail of
/// the chain rarely beats it, and searching costs more than it saves).
const NICE_MATCH: usize = 32;

/// Hash-table size (log2) scaled to the input: roughly one slot per two
/// input bytes, clamped to `2^8..=2^15`. `compress` runs once per ~8 KiB
/// chunk block, so a fixed maximum-size table would cost more to zero
/// than the block costs to scan.
fn table_bits(len: usize) -> u32 {
    let target = (len / 2).max(1);
    (usize::BITS - target.leading_zeros()).clamp(8, 15)
}

#[inline]
fn hash4(b: &[u8], bits: u32) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2654435761) >> (32 - bits)) as usize
}

/// Walk the hash chain for position `i`, returning the best
/// `(length, distance)` found, or `(0, 0)` if nothing reaches
/// [`MIN_MATCH`]. Candidates at or past `i` (self-hits from already
/// indexing `i`) are skipped; the chain is recency-ordered, so the walk
/// stops at the first candidate beyond the window.
fn best_match(input: &[u8], i: usize, head: &[u32], prev: &[u32], bits: u32) -> (usize, usize) {
    let max = (input.len() - i).min(MAX_MATCH);
    let mut best_len = 0;
    let mut best_dist = 0;
    let mut cand = head[hash4(&input[i..], bits)];
    let mut depth = 0;
    while cand != u32::MAX && depth < CHAIN_DEPTH {
        let c = cand as usize;
        if c >= i {
            cand = prev[c];
            continue;
        }
        if i - c > WINDOW {
            break;
        }
        // Cheap pre-check: a candidate can only beat the current best if
        // it matches at the byte the best match would have to extend past.
        if best_len == 0 || input[c + best_len] == input[i + best_len] {
            let mut l = 0;
            while l < max && input[c + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - c;
                if best_len == max || best_len >= NICE_MATCH {
                    break;
                }
            }
        }
        cand = prev[c];
        depth += 1;
    }
    if best_len >= MIN_MATCH {
        (best_len, best_dist)
    } else {
        (0, 0)
    }
}

/// Compress a byte slice.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let bits = table_bits(input.len());
    let mut head = vec![u32::MAX; 1 << bits];
    // Per-position chain links: prev[p] is the previous position sharing
    // p's hash bucket. Positions enter the chain in order via `ins`, and
    // a slot is pushed exactly when its position is indexed, so the
    // vector never needs pre-initialisation.
    let mut prev: Vec<u32> = Vec::with_capacity(input.len());
    let mut ins = 0;
    let mut i = 0;
    let mut literal_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(127);
            out.push(run as u8);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    macro_rules! index_upto {
        ($bound:expr) => {
            while ins < $bound && ins + MIN_MATCH <= input.len() {
                let h = hash4(&input[ins..], bits);
                prev.push(head[h]);
                head[h] = ins as u32;
                ins += 1;
            }
        };
    }

    while i + MIN_MATCH <= input.len() {
        index_upto!(i + 1);
        let (mut len, mut dist) = best_match(input, i, &head, &prev, bits);
        if len == 0 {
            i += 1;
            continue;
        }
        // One-step lazy matching: if the next position starts a strictly
        // longer match, emit this byte as a literal and take that instead.
        // An already-nice match skips the lookahead entirely.
        while len < NICE_MATCH && i + 1 + MIN_MATCH <= input.len() {
            index_upto!(i + 2);
            let (next_len, next_dist) = best_match(input, i + 1, &head, &prev, bits);
            if next_len > len {
                i += 1;
                len = next_len;
                dist = next_dist;
            } else {
                break;
            }
        }
        flush_literals(&mut out, literal_start, i, input);
        out.push(0x80 | (len - MIN_MATCH) as u8);
        out.extend_from_slice(&(dist as u16).to_le_bytes());
        i += len;
        // Index the positions the match skipped so later data can still
        // refer back into it.
        index_upto!(i);
        literal_start = i;
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    out
}

/// Decompression failure (corrupt block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptBlock(pub &'static str);

impl std::fmt::Display for CorruptBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed block: {}", self.0)
    }
}

impl std::error::Error for CorruptBlock {}

/// Decompress a block produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CorruptBlock> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut i = 0;
    while i < input.len() {
        let ctrl = input[i];
        i += 1;
        if ctrl < 0x80 {
            let run = ctrl as usize;
            if run == 0 {
                return Err(CorruptBlock("zero-length literal run"));
            }
            if i + run > input.len() {
                return Err(CorruptBlock("literal run past end"));
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            let len = (ctrl & 0x7f) as usize + MIN_MATCH;
            if i + 2 > input.len() {
                return Err(CorruptBlock("truncated match distance"));
            }
            let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(CorruptBlock("match distance out of range"));
            }
            // Overlapping copy (dist may be < len).
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Append a LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)`.
pub fn get_uvarint(input: &[u8]) -> Result<(u64, usize), CorruptBlock> {
    let mut v: u64 = 0;
    let mut shift = 0;
    for (i, &b) in input.iter().enumerate() {
        if shift >= 64 {
            return Err(CorruptBlock("varint overflow"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(CorruptBlock("truncated varint"))
}

/// Zigzag-encode a signed value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zigzag-decode.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for case in [
            &b""[..],
            b"a",
            b"hello world",
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            b"abcabcabcabcabcabcabcabc",
        ] {
            let c = compress(case);
            assert_eq!(decompress(&c).unwrap(), case, "case {case:?}");
        }
    }

    #[test]
    fn compresses_repetitive_logs_well() {
        // Log lines repeat heavily; expect a real ratio.
        let mut input = Vec::new();
        for i in 0..200 {
            input.extend_from_slice(
                format!(
                    "<13> 2022-03-03T01:47:{:02}Z x1000c0s0b0n0 slurmd[4242]: done with job {}\n",
                    i % 60,
                    10_000 + i
                )
                .as_bytes(),
            );
        }
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(ratio > 3.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        // Pseudo-random bytes: output may grow, but only by the literal
        // framing overhead (1 byte per 127).
        let input: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + input.len() / 127 + 2);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn overlapping_match_copy() {
        let input = b"abababababababababababab";
        let c = compress(input);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn corrupt_blocks_error_not_panic() {
        for bad in [
            &[0x00u8][..],           // zero-length literal
            &[0x05, b'a'][..],       // literal run past end
            &[0x81][..],             // truncated match
            &[0x81, 0x00, 0x00][..], // zero distance
            &[0x81, 0xff, 0xff][..], // distance beyond output
        ] {
            assert!(decompress(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let (back, n) = get_uvarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
        assert!(get_uvarint(&[0x80]).is_err());
        assert!(get_uvarint(&[]).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

//! Block compression for chunk storage.
//!
//! "Log data is compressed and stored in chunks, thus a small index and
//! compressed chunks significantly reduce the costs for storage and the
//! log query times" (§III-A). This module implements the codec from
//! scratch: an LZ77-style byte compressor (hash-table match finder, greedy
//! emit) plus LEB128 varints and zigzag encoding used by the chunk entry
//! layout.
//!
//! Wire format of the compressed stream, token by token:
//!
//! * `0x00..=0x7f` — literal run: the control byte is the run length
//!   (1–127), followed by that many literal bytes;
//! * `0x80..=0xff` — match: length = `(ctrl & 0x7f) + MIN_MATCH`, followed
//!   by a 2-byte little-endian back-distance (1–65535).

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length one token can carry.
const MAX_MATCH: usize = 127 + MIN_MATCH;
/// Window size (maximum back-distance).
const WINDOW: usize = 65_535;
/// Match-finder hash table size (power of two).
const HASH_SIZE: usize = 1 << 15;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & (HASH_SIZE - 1)
}

/// Compress a byte slice.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; HASH_SIZE];
    let mut i = 0;
    let mut literal_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(127);
            out.push(run as u8);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        let mut match_len = 0;
        if candidate != usize::MAX && i - candidate <= WINDOW {
            let max = (input.len() - i).min(MAX_MATCH);
            while match_len < max && input[candidate + match_len] == input[i + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i, input);
            let dist = i - candidate;
            out.push(0x80 | (match_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            // Index a few positions inside the match to keep the table warm.
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= end.min(input.len()) && j < i + 8 {
                table[hash4(&input[j..])] = j;
                j += 1;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    out
}

/// Decompression failure (corrupt block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptBlock(pub &'static str);

impl std::fmt::Display for CorruptBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed block: {}", self.0)
    }
}

impl std::error::Error for CorruptBlock {}

/// Decompress a block produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CorruptBlock> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut i = 0;
    while i < input.len() {
        let ctrl = input[i];
        i += 1;
        if ctrl < 0x80 {
            let run = ctrl as usize;
            if run == 0 {
                return Err(CorruptBlock("zero-length literal run"));
            }
            if i + run > input.len() {
                return Err(CorruptBlock("literal run past end"));
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            let len = (ctrl & 0x7f) as usize + MIN_MATCH;
            if i + 2 > input.len() {
                return Err(CorruptBlock("truncated match distance"));
            }
            let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if dist == 0 || dist > out.len() {
                return Err(CorruptBlock("match distance out of range"));
            }
            // Overlapping copy (dist may be < len).
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Append a LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)`.
pub fn get_uvarint(input: &[u8]) -> Result<(u64, usize), CorruptBlock> {
    let mut v: u64 = 0;
    let mut shift = 0;
    for (i, &b) in input.iter().enumerate() {
        if shift >= 64 {
            return Err(CorruptBlock("varint overflow"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(CorruptBlock("truncated varint"))
}

/// Zigzag-encode a signed value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zigzag-decode.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for case in [
            &b""[..],
            b"a",
            b"hello world",
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            b"abcabcabcabcabcabcabcabc",
        ] {
            let c = compress(case);
            assert_eq!(decompress(&c).unwrap(), case, "case {case:?}");
        }
    }

    #[test]
    fn compresses_repetitive_logs_well() {
        // Log lines repeat heavily; expect a real ratio.
        let mut input = Vec::new();
        for i in 0..200 {
            input.extend_from_slice(
                format!(
                    "<13> 2022-03-03T01:47:{:02}Z x1000c0s0b0n0 slurmd[4242]: done with job {}\n",
                    i % 60,
                    10_000 + i
                )
                .as_bytes(),
            );
        }
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(ratio > 3.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        // Pseudo-random bytes: output may grow, but only by the literal
        // framing overhead (1 byte per 127).
        let input: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + input.len() / 127 + 2);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn overlapping_match_copy() {
        let input = b"abababababababababababab";
        let c = compress(input);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn corrupt_blocks_error_not_panic() {
        for bad in [
            &[0x00u8][..],           // zero-length literal
            &[0x05, b'a'][..],       // literal run past end
            &[0x81][..],             // truncated match
            &[0x81, 0x00, 0x00][..], // zero distance
            &[0x81, 0xff, 0xff][..], // distance beyond output
        ] {
            assert!(decompress(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let (back, n) = get_uvarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
        assert!(get_uvarint(&[0x80]).is_err());
        assert!(get_uvarint(&[]).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

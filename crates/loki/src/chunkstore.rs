//! The chunk object store: "Chunks are first stored in memory, and then
//! moved to disk" (§IV-A).
//!
//! Real Loki offloads sealed chunks to an object store (S3/GCS/filesystem)
//! and keeps only the label index plus recent chunks in the ingesters.
//! This module provides the same split — plus the compacted tier the
//! compactor writes:
//!
//! * an [`ObjectStore`] abstraction and [`MemObjectStore`], the hot
//!   "disk" tier sealed chunks are offloaded into;
//! * [`ColdTier`], the simulated S3-style object store compacted chunks
//!   are demoted to, with a configurable per-operation latency and a
//!   deterministic transient-failure model (the `core::chaos` coin,
//!   applied to object reads);
//! * the serialization of [`SealedChunk`]s into self-describing objects
//!   and of stream labels into series-index entries.
//!
//! ## Key scheme
//!
//! One chunk object's key is
//! `chunks/<fp-hex>/<min-enc>-<max-enc>-<seq-hex>` (compacted objects use
//! the `compacted/` prefix). Timestamps are encoded **offset-binary**:
//! the i64 nanosecond value with its sign bit flipped, rendered as
//! fixed-width hex, so lexicographic key order equals timestamp order
//! even for pre-epoch (negative) timestamps. `seq` is a store-wide
//! monotonic counter making every persisted chunk's key unique: two
//! chunks of one stream with the identical `(min_ts, max_ts)` span (easy
//! with same-timestamp bursts, or a WAL replay re-offloading a chunk)
//! get distinct keys instead of silently overwriting each other.
//!
//! Because the span is part of the key, range reads and retention deletes
//! prune non-overlapping objects from the listing alone — without
//! fetching or decoding a single object body.

use crate::chunk::SealedChunk;
use crate::compress::{get_uvarint, put_uvarint, unzigzag, zigzag, CorruptBlock};
use bytes::Bytes;
use omni_model::{LabelSet, Timestamp};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Object-store abstraction (the "disk"/S3 tier).
pub trait ObjectStore: Send + Sync {
    /// Store an object.
    fn put(&self, key: String, data: Bytes);
    /// Fetch an object.
    fn get(&self, key: &str) -> Option<Bytes>;
    /// Keys beginning with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Delete an object; returns whether it existed.
    fn delete(&self, key: &str) -> bool;
}

/// In-memory object store standing in for the disk tier, with byte/object
/// accounting for the experiments.
#[derive(Default)]
pub struct MemObjectStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
    puts: AtomicU64,
    gets: AtomicU64,
}

impl MemObjectStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Total stored bytes.
    pub fn stored_bytes(&self) -> usize {
        self.objects.read().values().map(|b| b.len()).sum()
    }

    /// `(puts, gets)` operation counters.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.puts.load(Ordering::Relaxed), self.gets.load(Ordering::Relaxed))
    }
}

impl ObjectStore for MemObjectStore {
    fn put(&self, key: String, data: Bytes) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.objects.write().insert(key, data);
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.objects.read().get(key).cloned()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn delete(&self, key: &str) -> bool {
        self.objects.write().remove(key).is_some()
    }
}

/// Latency and transient-failure model of the cold (compacted) tier — an
/// S3-style remote object store rather than local disk. Mirrors the
/// deterministic permille coin of `core::chaos`: whether a given object's
/// first read fails transiently is a pure function of `(seed, key)`, so a
/// fixed-seed run produces identical retry counts regardless of query
/// thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdTierPolicy {
    /// Simulated latency charged per GET attempt.
    pub get_latency_ns: i64,
    /// Simulated latency charged per PUT.
    pub put_latency_ns: i64,
    /// Permille of objects whose first GET attempt fails transiently
    /// (the retry always succeeds — availability, not durability).
    pub fail_permille: u16,
    /// Seed of the failure coin.
    pub seed: u64,
}

impl Default for ColdTierPolicy {
    fn default() -> Self {
        Self {
            get_latency_ns: 8_000_000,  // 8ms: remote object-store GET
            put_latency_ns: 15_000_000, // 15ms: remote object-store PUT
            fail_permille: 0,
            seed: 0,
        }
    }
}

/// fnv1a64 over a byte string — the same deterministic coin basis
/// `core::chaos` uses for its flaky-receiver rolls.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cold object tier: compacted chunks demoted out of the hot store.
/// Wraps a [`MemObjectStore`] with the simulated latency/failure model of
/// [`ColdTierPolicy`]; every charged nanosecond and transient failure is
/// accounted so the drill and self-telemetry can surface the tier's cost.
#[derive(Default)]
pub struct ColdTier {
    objects: MemObjectStore,
    policy: RwLock<ColdTierPolicy>,
    /// First-attempt GET failures (each retried once, successfully).
    transient_failures: AtomicU64,
    /// Total simulated nanoseconds charged across operations.
    simulated_ns: AtomicU64,
}

impl ColdTier {
    /// Empty cold tier with the default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the latency/failure policy (chaos scenarios flip this at
    /// runtime, exactly like `ChaosAction`s flip bus fault windows).
    pub fn set_policy(&self, policy: ColdTierPolicy) {
        *self.policy.write() = policy;
    }

    /// The current policy.
    pub fn policy(&self) -> ColdTierPolicy {
        *self.policy.read()
    }

    /// Whether this key's first GET attempt fails under the policy coin.
    fn first_attempt_fails(&self, key: &str, policy: &ColdTierPolicy) -> bool {
        if policy.fail_permille == 0 {
            return false;
        }
        let mut buf = policy.seed.to_le_bytes().to_vec();
        buf.extend_from_slice(key.as_bytes());
        (fnv1a64(&buf) % 1_000) < policy.fail_permille as u64
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.object_count()
    }

    /// Total stored bytes.
    pub fn stored_bytes(&self) -> usize {
        self.objects.stored_bytes()
    }

    /// `(puts, gets)` operation counters (gets count every attempt).
    pub fn op_counts(&self) -> (u64, u64) {
        self.objects.op_counts()
    }

    /// First-attempt GET failures injected so far.
    pub fn transient_failures(&self) -> u64 {
        self.transient_failures.load(Ordering::Relaxed)
    }

    /// Total simulated nanoseconds charged across operations.
    pub fn simulated_latency_ns(&self) -> u64 {
        self.simulated_ns.load(Ordering::Relaxed)
    }
}

impl ObjectStore for ColdTier {
    fn put(&self, key: String, data: Bytes) {
        let policy = self.policy();
        self.simulated_ns.fetch_add(policy.put_latency_ns.max(0) as u64, Ordering::Relaxed);
        self.objects.put(key, data);
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        let policy = self.policy();
        self.simulated_ns.fetch_add(policy.get_latency_ns.max(0) as u64, Ordering::Relaxed);
        if self.first_attempt_fails(key, &policy) {
            // Transient: charge the failed attempt, count it, retry once.
            self.transient_failures.fetch_add(1, Ordering::Relaxed);
            self.objects.get(key); // the failed attempt still counts as a GET
            self.simulated_ns.fetch_add(policy.get_latency_ns.max(0) as u64, Ordering::Relaxed);
        }
        self.objects.get(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects.list(prefix)
    }

    fn delete(&self, key: &str) -> bool {
        self.objects.delete(key)
    }
}

/// Serialize a sealed chunk into a self-describing object:
/// varint header (count, min_ts, max_ts, uncompressed, data_len) + block.
pub fn chunk_to_object(chunk: &SealedChunk) -> Bytes {
    let data = chunk.raw_block();
    let mut out = Vec::with_capacity(data.len() + 24);
    put_uvarint(&mut out, chunk.count as u64);
    put_uvarint(&mut out, zigzag(chunk.min_ts));
    put_uvarint(&mut out, zigzag(chunk.max_ts));
    put_uvarint(&mut out, chunk.uncompressed as u64);
    put_uvarint(&mut out, data.len() as u64);
    out.extend_from_slice(data);
    Bytes::from(out)
}

/// Decode an object back into a sealed chunk.
pub fn object_to_chunk(data: &[u8]) -> Result<SealedChunk, CorruptBlock> {
    let mut pos = 0;
    let (count, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (min_z, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (max_z, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (uncompressed, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (len, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let len = len as usize;
    if pos + len != data.len() {
        return Err(CorruptBlock("object length mismatch"));
    }
    Ok(SealedChunk::from_parts(
        Bytes::copy_from_slice(&data[pos..]),
        unzigzag(min_z),
        unzigzag(max_z),
        count as usize,
        uncompressed as usize,
    ))
}

/// Offset-binary encoding of a timestamp for object keys: flip the sign
/// bit and render fixed-width hex, so `encode_key_ts(a) < encode_key_ts(b)`
/// (lexicographically) iff `a < b` — including pre-epoch negatives, which
/// the old `{min_ts:020}` decimal rendering sorted before *and among*
/// positives in the wrong order (`-` sorts before digits, and `-2` sorts
/// before `-1`).
pub fn encode_key_ts(ts: Timestamp) -> String {
    format!("{:016x}", (ts as u64) ^ (1u64 << 63))
}

/// Inverse of [`encode_key_ts`].
pub fn decode_key_ts(s: &str) -> Option<Timestamp> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(|v| (v ^ (1u64 << 63)) as i64)
}

/// Object key for one chunk of one stream:
/// `chunks/<fp-hex>/<min-enc>-<max-enc>-<seq-hex>`. The sequence
/// component makes same-span chunks distinct objects (the pre-fix scheme
/// silently overwrote them), and the offset-binary timestamp encoding
/// keeps key order equal to time order for the compactor's ordered scans.
pub fn chunk_key(fingerprint: u64, min_ts: Timestamp, max_ts: Timestamp, seq: u64) -> String {
    format!(
        "chunks/{fingerprint:016x}/{}-{}-{seq:016x}",
        encode_key_ts(min_ts),
        encode_key_ts(max_ts)
    )
}

/// Object key for one compacted chunk in the cold tier.
pub fn compacted_key(fingerprint: u64, min_ts: Timestamp, max_ts: Timestamp, seq: u64) -> String {
    format!(
        "compacted/{fingerprint:016x}/{}-{}-{seq:016x}",
        encode_key_ts(min_ts),
        encode_key_ts(max_ts)
    )
}

/// Parse the `(min_ts, max_ts)` span out of a chunk-object key (either
/// tier). This is what lets `fetch`/`delete_before` prune objects from
/// the listing without touching their bodies.
pub fn parse_key_span(key: &str) -> Option<(Timestamp, Timestamp)> {
    let leaf = key.rsplit('/').next()?;
    let mut parts = leaf.split('-');
    let min = decode_key_ts(parts.next()?)?;
    let max = decode_key_ts(parts.next()?)?;
    parts.next()?; // seq must be present
    if parts.next().is_some() {
        return None;
    }
    Some((min, max))
}

/// Object key for one stream's series-index entry: `series/<fingerprint-hex>`.
pub fn series_key(fingerprint: u64) -> String {
    format!("series/{fingerprint:016x}")
}

/// Encode a stream's labels into a series-index object: a pair count
/// followed by length-prefixed key/value strings.
pub fn labels_to_object(labels: &LabelSet) -> Bytes {
    let mut out = Vec::new();
    put_uvarint(&mut out, labels.len() as u64);
    for (k, v) in labels.iter() {
        put_uvarint(&mut out, k.len() as u64);
        out.extend_from_slice(k.as_bytes());
        put_uvarint(&mut out, v.len() as u64);
        out.extend_from_slice(v.as_bytes());
    }
    Bytes::from(out)
}

/// Decode a series-index object back into a label set. Corrupt or
/// truncated objects yield an error, never a panic or garbage labels.
pub fn object_to_labels(data: &[u8]) -> Result<LabelSet, CorruptBlock> {
    let mut pos = 0;
    let (n_labels, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let mut labels = LabelSet::new();
    for _ in 0..n_labels {
        let (klen, n) = get_uvarint(&data[pos..])?;
        pos += n;
        let k = read_str(data, &mut pos, klen as usize)?;
        let (vlen, n) = get_uvarint(&data[pos..])?;
        pos += n;
        let v = read_str(data, &mut pos, vlen as usize)?;
        labels.insert(k, v);
    }
    if pos != data.len() {
        return Err(CorruptBlock("series entry has trailing bytes"));
    }
    Ok(labels)
}

fn read_str(buf: &[u8], pos: &mut usize, len: usize) -> Result<String, CorruptBlock> {
    if *pos + len > buf.len() {
        return Err(CorruptBlock("series entry runs past object end"));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| CorruptBlock("series label is not utf-8"))?
        .to_string();
    *pos += len;
    Ok(s)
}

/// Per-fetch accounting: which tier served what, and how much the
/// key-span index saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Objects fetched from the hot (sealed) tier.
    pub hot_objects: usize,
    /// Objects fetched from the cold (compacted) tier.
    pub cold_objects: usize,
    /// Objects skipped from the key span alone, bodies never read.
    pub skipped_by_key: usize,
}

/// The chunk store: persistence + retrieval of offloaded chunks across
/// the hot (sealed) and cold (compacted) tiers.
#[derive(Clone)]
pub struct ChunkStore {
    store: Arc<MemObjectStore>,
    cold: Arc<ColdTier>,
    /// Store-wide monotonic sequence uniquifying chunk keys.
    next_seq: Arc<AtomicU64>,
}

impl Default for ChunkStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkStore {
    /// A chunk store over fresh in-memory object tiers.
    pub fn new() -> Self {
        Self {
            store: Arc::new(MemObjectStore::new()),
            cold: Arc::new(ColdTier::new()),
            next_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The underlying hot-tier object store (for accounting).
    pub fn objects(&self) -> &MemObjectStore {
        &self.store
    }

    /// The cold (compacted) tier.
    pub fn cold(&self) -> &ColdTier {
        &self.cold
    }

    /// Persist one chunk of a stream into the hot tier.
    pub fn persist(&self, fingerprint: u64, chunk: &SealedChunk) {
        if chunk.count == 0 {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.store
            .put(chunk_key(fingerprint, chunk.min_ts, chunk.max_ts, seq), chunk_to_object(chunk));
    }

    /// Write one compacted chunk into the cold tier, returning its key.
    pub fn put_compacted(&self, fingerprint: u64, chunk: &SealedChunk) -> String {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let key = compacted_key(fingerprint, chunk.min_ts, chunk.max_ts, seq);
        self.cold.put(key.clone(), chunk_to_object(chunk));
        key
    }

    /// Record the stream's labels in the durable series index (idempotent).
    /// Without this, offloaded chunks would be reachable only through an
    /// ingester's in-memory stream map — and orphaned by a crash.
    pub fn register_series(&self, fingerprint: u64, labels: &LabelSet) {
        let key = series_key(fingerprint);
        if self.store.list(&key).is_empty() {
            self.store.put(key, labels_to_object(labels));
        }
    }

    /// Every `(fingerprint, labels)` in the durable series index.
    pub fn series(&self) -> Vec<(u64, LabelSet)> {
        self.store
            .list("series/")
            .into_iter()
            .filter_map(|key| {
                let fp = u64::from_str_radix(key.strip_prefix("series/")?, 16).ok()?;
                let labels = object_to_labels(&self.store.get(&key)?).ok()?;
                Some((fp, labels))
            })
            .collect()
    }

    /// Chunk keys of one stream in one tier, in key (= time) order, each
    /// with the span parsed from the key.
    fn keys_with_spans(
        tier: &dyn ObjectStore,
        prefix: &str,
    ) -> Vec<(String, Timestamp, Timestamp)> {
        tier.list(prefix)
            .into_iter()
            .filter_map(|key| {
                let (min, max) = parse_key_span(&key)?;
                Some((key, min, max))
            })
            .collect()
    }

    /// Hot-tier chunk keys of a stream with their spans, in time order
    /// (the compactor's ordered scan).
    pub fn hot_chunk_refs(&self, fingerprint: u64) -> Vec<(String, Timestamp, Timestamp)> {
        Self::keys_with_spans(&*self.store, &format!("chunks/{fingerprint:016x}/"))
    }

    /// Cold-tier chunk keys of a stream with their spans, in time order.
    pub fn cold_chunk_refs(&self, fingerprint: u64) -> Vec<(String, Timestamp, Timestamp)> {
        Self::keys_with_spans(&*self.cold, &format!("compacted/{fingerprint:016x}/"))
    }

    /// Fetch every chunk of a stream overlapping `(start, end]`, both
    /// tiers.
    pub fn fetch(&self, fingerprint: u64, start: Timestamp, end: Timestamp) -> Vec<SealedChunk> {
        self.fetch_stats(fingerprint, start, end).0
    }

    /// [`Self::fetch`] with per-tier accounting. Non-overlapping objects
    /// are pruned from the key span alone — their bodies are never read —
    /// so a narrow window over a long-lived stream costs O(overlap) GETs,
    /// not O(stream history).
    pub fn fetch_stats(
        &self,
        fingerprint: u64,
        start: Timestamp,
        end: Timestamp,
    ) -> (Vec<SealedChunk>, FetchStats) {
        let mut out = Vec::new();
        let mut stats = FetchStats::default();
        for (tier, refs, fetched) in [
            (
                &*self.store as &dyn ObjectStore,
                self.hot_chunk_refs(fingerprint),
                &mut stats.hot_objects as &mut usize,
            ),
            (
                &*self.cold as &dyn ObjectStore,
                self.cold_chunk_refs(fingerprint),
                &mut stats.cold_objects,
            ),
        ] {
            for (key, min, max) in refs {
                // Window semantics are `(start, end]`, mirroring
                // `SealedChunk::overlaps`.
                if max <= start || min > end {
                    stats.skipped_by_key += 1;
                    continue;
                }
                if let Some(data) = tier.get(&key) {
                    if let Ok(chunk) = object_to_chunk(&data) {
                        if chunk.overlaps(start, end) {
                            *fetched += 1;
                            out.push(chunk);
                        }
                    }
                }
            }
        }
        (out, stats)
    }

    /// Delete chunks of a stream entirely older than `horizon`, both
    /// tiers, deciding from the key span alone. Returns how many objects
    /// were removed. A stream whose last chunk goes (in both tiers) also
    /// loses its series-index entry.
    pub fn delete_before(&self, fingerprint: u64, horizon: Timestamp) -> usize {
        let mut removed = 0;
        for (tier, refs) in [
            (&*self.store as &dyn ObjectStore, self.hot_chunk_refs(fingerprint)),
            (&*self.cold as &dyn ObjectStore, self.cold_chunk_refs(fingerprint)),
        ] {
            for (key, _, max) in refs {
                if max < horizon && tier.delete(&key) {
                    removed += 1;
                }
            }
        }
        if removed > 0
            && self.hot_chunk_refs(fingerprint).is_empty()
            && self.cold_chunk_refs(fingerprint).is_empty()
        {
            self.store.delete(&series_key(fingerprint));
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::LogEntry;

    fn chunk(lines: usize, base_ts: Timestamp) -> SealedChunk {
        let entries: Vec<LogEntry> =
            (0..lines).map(|i| LogEntry::new(base_ts + i as i64, format!("line {i}"))).collect();
        SealedChunk::from_entries(&entries)
    }

    #[test]
    fn object_roundtrip() {
        let c = chunk(50, 1_000);
        let obj = chunk_to_object(&c);
        let back = object_to_chunk(&obj).unwrap();
        assert_eq!(back.count, c.count);
        assert_eq!(back.min_ts, c.min_ts);
        assert_eq!(back.max_ts, c.max_ts);
        assert_eq!(back.decode().unwrap(), c.decode().unwrap());
    }

    #[test]
    fn corrupt_objects_rejected() {
        let c = chunk(5, 0);
        let mut obj = chunk_to_object(&c).to_vec();
        obj.truncate(obj.len() - 1);
        assert!(object_to_chunk(&obj).is_err());
        assert!(object_to_chunk(&[]).is_err());
    }

    #[test]
    fn persist_fetch_by_range() {
        let store = ChunkStore::new();
        store.persist(42, &chunk(10, 0)); // ts 0..9
        store.persist(42, &chunk(10, 1_000)); // ts 1000..1009
        store.persist(7, &chunk(10, 0)); // other stream
        let got = store.fetch(42, -1, 500);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].min_ts, 0);
        let got = store.fetch(42, -1, 2_000);
        assert_eq!(got.len(), 2);
        assert!(store.fetch(99, -1, 2_000).is_empty());
        assert_eq!(store.objects().object_count(), 3);
    }

    #[test]
    fn same_span_chunks_both_survive() {
        // Regression for the chunk_key collision: two sealed chunks of the
        // same stream with identical (min_ts, max_ts) — a same-timestamp
        // burst cut by chunk_target_bytes, or a WAL replay re-offload —
        // used to map to the same object key, so the second persist
        // silently overwrote the first and offload lost data. The
        // sequence component in the key makes them distinct objects.
        let store = ChunkStore::new();
        let a = SealedChunk::from_entries(&[
            LogEntry::new(500, "burst line A1"),
            LogEntry::new(500, "burst line A2"),
        ]);
        let b = SealedChunk::from_entries(&[
            LogEntry::new(500, "burst line B1"),
            LogEntry::new(500, "burst line B2"),
        ]);
        assert_eq!((a.min_ts, a.max_ts), (b.min_ts, b.max_ts), "same span by construction");
        store.persist(1, &a);
        store.persist(1, &b);
        assert_eq!(store.objects().object_count(), 2, "same-span chunks must not collide");
        let got = store.fetch(1, 0, 1_000);
        assert_eq!(got.len(), 2);
        let mut lines: Vec<String> =
            got.iter().flat_map(|c| c.decode().unwrap()).map(|e| e.line).collect();
        lines.sort();
        assert_eq!(lines, ["burst line A1", "burst line A2", "burst line B1", "burst line B2"]);
    }

    #[test]
    fn key_encoding_orders_negative_timestamps() {
        // Pre-epoch timestamps: decimal rendering made `-` sort before
        // digits and reversed the order among negatives. The offset-binary
        // hex encoding keeps lexicographic key order equal to time order.
        let timestamps = [i64::MIN, -2_000, -1_999, -1, 0, 1, 2_000, i64::MAX];
        let encoded: Vec<String> = timestamps.iter().map(|&t| encode_key_ts(t)).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted, "encoding must be order-preserving");
        for &t in &timestamps {
            assert_eq!(decode_key_ts(&encode_key_ts(t)), Some(t));
        }
    }

    #[test]
    fn pre_epoch_chunks_fetch_and_expire_correctly() {
        let store = ChunkStore::new();
        store.persist(9, &chunk(10, -5_000)); // ts -5000..-4991
        store.persist(9, &chunk(10, 1_000)); // ts 1000..1009
                                             // Keys list in time order: the negative-span chunk first.
        let refs = store.hot_chunk_refs(9);
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].1, -5_000);
        assert_eq!(refs[1].1, 1_000);
        // Fetch finds the pre-epoch chunk through the key-span filter.
        let got = store.fetch(9, -6_000, 0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].min_ts, -5_000);
        // Retention at the epoch deletes only the pre-epoch chunk.
        assert_eq!(store.delete_before(9, 0), 1);
        assert_eq!(store.fetch(9, i64::MIN, i64::MAX).len(), 1);
    }

    #[test]
    fn fetch_skips_non_overlapping_objects_without_get() {
        // The key already carries the span, so a narrow fetch must not GET
        // (let alone decode) objects outside the window.
        let store = ChunkStore::new();
        for i in 0..10 {
            store.persist(3, &chunk(10, i * 1_000)); // spans [0..9], [1000..1009], ...
        }
        let (_, gets_before) = store.objects().op_counts();
        let (chunks, stats) = store.fetch_stats(3, 4_000, 4_500);
        assert_eq!(chunks.len(), 1, "exactly one chunk overlaps (4000, 4500]");
        let (_, gets_after) = store.objects().op_counts();
        assert_eq!(gets_after - gets_before, 1, "only the overlapping object is fetched");
        assert_eq!(stats.hot_objects, 1);
        assert_eq!(stats.skipped_by_key, 9);
    }

    #[test]
    fn delete_before_removes_old_objects() {
        let store = ChunkStore::new();
        store.persist(1, &chunk(10, 0));
        store.persist(1, &chunk(10, 10_000));
        assert_eq!(store.delete_before(1, 5_000), 1);
        assert_eq!(store.objects().object_count(), 1);
        assert!(store.fetch(1, -1, 5_000).is_empty());
        assert_eq!(store.fetch(1, -1, 20_000).len(), 1);
    }

    #[test]
    fn empty_chunks_not_persisted() {
        let store = ChunkStore::new();
        store.persist(1, &SealedChunk::from_entries(&[]));
        assert_eq!(store.objects().object_count(), 0);
    }

    #[test]
    fn mem_store_list_prefix() {
        let store = MemObjectStore::new();
        store.put("a/1".into(), Bytes::from_static(b"x"));
        store.put("a/2".into(), Bytes::from_static(b"y"));
        store.put("b/1".into(), Bytes::from_static(b"z"));
        assert_eq!(store.list("a/"), vec!["a/1", "a/2"]);
        assert_eq!(store.stored_bytes(), 3);
        assert!(store.delete("a/1"));
        assert!(!store.delete("a/1"));
    }

    #[test]
    fn cold_tier_serves_compacted_chunks_and_charges_latency() {
        let store = ChunkStore::new();
        let key = store.put_compacted(5, &chunk(20, 100));
        assert!(key.starts_with("compacted/"));
        store.register_series(5, &omni_model::labels!("app" => "x"));
        let (chunks, stats) = store.fetch_stats(5, 0, 1_000);
        assert_eq!(chunks.len(), 1);
        assert_eq!(stats.cold_objects, 1);
        assert_eq!(stats.hot_objects, 0);
        let policy = store.cold().policy();
        assert!(store.cold().simulated_latency_ns() >= policy.put_latency_ns as u64);
    }

    #[test]
    fn cold_tier_transient_failures_are_deterministic_and_retried() {
        let tier = ColdTier::new();
        tier.set_policy(ColdTierPolicy { fail_permille: 1_000, seed: 7, ..Default::default() });
        tier.put("compacted/x".into(), Bytes::from_static(b"abc"));
        // With a 100% coin every GET fails once and succeeds on retry.
        assert_eq!(tier.get("compacted/x").unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(tier.transient_failures(), 1);
        assert_eq!(tier.get("compacted/x").unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(tier.transient_failures(), 2, "the coin is per (seed, key), not one-shot");
        // The coin is deterministic: the same key under the same seed
        // always rolls the same way.
        let again = ColdTier::new();
        again.set_policy(ColdTierPolicy { fail_permille: 500, seed: 7, ..Default::default() });
        let probe = |t: &ColdTier| {
            (0..20)
                .map(|i| {
                    let key = format!("compacted/{i}");
                    t.put(key.clone(), Bytes::from_static(b"x"));
                    let before = t.transient_failures();
                    t.get(&key);
                    t.transient_failures() > before
                })
                .collect::<Vec<bool>>()
        };
        let third = ColdTier::new();
        third.set_policy(ColdTierPolicy { fail_permille: 500, seed: 7, ..Default::default() });
        assert_eq!(probe(&again), probe(&third));
    }

    #[test]
    fn delete_before_keeps_series_while_cold_data_remains() {
        let store = ChunkStore::new();
        store.register_series(11, &omni_model::labels!("app" => "cold"));
        store.persist(11, &chunk(5, 0));
        store.put_compacted(11, &chunk(5, 10_000));
        // The hot chunk expires; the cold one is still live, so the
        // series entry must survive.
        assert_eq!(store.delete_before(11, 5_000), 1);
        assert_eq!(store.series().len(), 1);
        // Once the cold tier drains too, the series entry goes.
        assert_eq!(store.delete_before(11, 50_000), 1);
        assert!(store.series().is_empty());
    }
}

//! The chunk object store: "Chunks are first stored in memory, and then
//! moved to disk" (§IV-A).
//!
//! Real Loki offloads sealed chunks to an object store (S3/GCS/filesystem)
//! and keeps only the label index plus recent chunks in the ingesters.
//! This module provides the same split: an [`ObjectStore`] abstraction, an
//! in-memory implementation standing in for the disk tier, and the
//! serialization of [`SealedChunk`]s into self-describing objects.

use crate::chunk::SealedChunk;
use crate::compress::{get_uvarint, put_uvarint, unzigzag, zigzag, CorruptBlock};
use bytes::Bytes;
use omni_model::{LabelSet, Timestamp};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Object-store abstraction (the "disk"/S3 tier).
pub trait ObjectStore: Send + Sync {
    /// Store an object.
    fn put(&self, key: String, data: Bytes);
    /// Fetch an object.
    fn get(&self, key: &str) -> Option<Bytes>;
    /// Keys beginning with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Delete an object; returns whether it existed.
    fn delete(&self, key: &str) -> bool;
}

/// In-memory object store standing in for the disk tier, with byte/object
/// accounting for the experiments.
#[derive(Default)]
pub struct MemObjectStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
    puts: AtomicU64,
    gets: AtomicU64,
}

impl MemObjectStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Total stored bytes.
    pub fn stored_bytes(&self) -> usize {
        self.objects.read().values().map(|b| b.len()).sum()
    }

    /// `(puts, gets)` operation counters.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.puts.load(Ordering::Relaxed), self.gets.load(Ordering::Relaxed))
    }
}

impl ObjectStore for MemObjectStore {
    fn put(&self, key: String, data: Bytes) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.objects.write().insert(key, data);
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.objects.read().get(key).cloned()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn delete(&self, key: &str) -> bool {
        self.objects.write().remove(key).is_some()
    }
}

/// Serialize a sealed chunk into a self-describing object:
/// varint header (count, min_ts, max_ts, uncompressed, data_len) + block.
pub fn chunk_to_object(chunk: &SealedChunk) -> Bytes {
    let data = chunk.raw_block();
    let mut out = Vec::with_capacity(data.len() + 24);
    put_uvarint(&mut out, chunk.count as u64);
    put_uvarint(&mut out, zigzag(chunk.min_ts));
    put_uvarint(&mut out, zigzag(chunk.max_ts));
    put_uvarint(&mut out, chunk.uncompressed as u64);
    put_uvarint(&mut out, data.len() as u64);
    out.extend_from_slice(data);
    Bytes::from(out)
}

/// Decode an object back into a sealed chunk.
pub fn object_to_chunk(data: &[u8]) -> Result<SealedChunk, CorruptBlock> {
    let mut pos = 0;
    let (count, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (min_z, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (max_z, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (uncompressed, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let (len, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let len = len as usize;
    if pos + len != data.len() {
        return Err(CorruptBlock("object length mismatch"));
    }
    Ok(SealedChunk::from_parts(
        Bytes::copy_from_slice(&data[pos..]),
        unzigzag(min_z),
        unzigzag(max_z),
        count as usize,
        uncompressed as usize,
    ))
}

/// Object key for one chunk of one stream:
/// `chunks/<fingerprint-hex>/<min_ts>-<max_ts>`.
pub fn chunk_key(fingerprint: u64, min_ts: Timestamp, max_ts: Timestamp) -> String {
    format!("chunks/{fingerprint:016x}/{min_ts:020}-{max_ts:020}")
}

/// Object key for one stream's series-index entry: `series/<fingerprint-hex>`.
pub fn series_key(fingerprint: u64) -> String {
    format!("series/{fingerprint:016x}")
}

fn labels_to_object(labels: &LabelSet) -> Bytes {
    let mut out = Vec::new();
    put_uvarint(&mut out, labels.len() as u64);
    for (k, v) in labels.iter() {
        put_uvarint(&mut out, k.len() as u64);
        out.extend_from_slice(k.as_bytes());
        put_uvarint(&mut out, v.len() as u64);
        out.extend_from_slice(v.as_bytes());
    }
    Bytes::from(out)
}

fn object_to_labels(data: &[u8]) -> Result<LabelSet, CorruptBlock> {
    let mut pos = 0;
    let (n_labels, n) = get_uvarint(&data[pos..])?;
    pos += n;
    let mut labels = LabelSet::new();
    for _ in 0..n_labels {
        let (klen, n) = get_uvarint(&data[pos..])?;
        pos += n;
        let k = read_str(data, &mut pos, klen as usize)?;
        let (vlen, n) = get_uvarint(&data[pos..])?;
        pos += n;
        let v = read_str(data, &mut pos, vlen as usize)?;
        labels.insert(k, v);
    }
    Ok(labels)
}

fn read_str(buf: &[u8], pos: &mut usize, len: usize) -> Result<String, CorruptBlock> {
    if *pos + len > buf.len() {
        return Err(CorruptBlock("series entry runs past object end"));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| CorruptBlock("series label is not utf-8"))?
        .to_string();
    *pos += len;
    Ok(s)
}

/// The chunk store: persistence + retrieval of offloaded chunks.
#[derive(Clone)]
pub struct ChunkStore {
    store: Arc<MemObjectStore>,
}

impl Default for ChunkStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkStore {
    /// A chunk store over a fresh in-memory object tier.
    pub fn new() -> Self {
        Self { store: Arc::new(MemObjectStore::new()) }
    }

    /// The underlying object store (for accounting).
    pub fn objects(&self) -> &MemObjectStore {
        &self.store
    }

    /// Persist one chunk of a stream.
    pub fn persist(&self, fingerprint: u64, chunk: &SealedChunk) {
        if chunk.count == 0 {
            return;
        }
        self.store.put(chunk_key(fingerprint, chunk.min_ts, chunk.max_ts), chunk_to_object(chunk));
    }

    /// Record the stream's labels in the durable series index (idempotent).
    /// Without this, offloaded chunks would be reachable only through an
    /// ingester's in-memory stream map — and orphaned by a crash.
    pub fn register_series(&self, fingerprint: u64, labels: &LabelSet) {
        let key = series_key(fingerprint);
        if self.store.list(&key).is_empty() {
            self.store.put(key, labels_to_object(labels));
        }
    }

    /// Every `(fingerprint, labels)` in the durable series index.
    pub fn series(&self) -> Vec<(u64, LabelSet)> {
        self.store
            .list("series/")
            .into_iter()
            .filter_map(|key| {
                let fp = u64::from_str_radix(key.strip_prefix("series/")?, 16).ok()?;
                let labels = object_to_labels(&self.store.get(&key)?).ok()?;
                Some((fp, labels))
            })
            .collect()
    }

    /// Fetch every chunk of a stream overlapping `(start, end]`.
    pub fn fetch(&self, fingerprint: u64, start: Timestamp, end: Timestamp) -> Vec<SealedChunk> {
        let prefix = format!("chunks/{fingerprint:016x}/");
        let mut out = Vec::new();
        for key in self.store.list(&prefix) {
            if let Some(data) = self.store.get(&key) {
                if let Ok(chunk) = object_to_chunk(&data) {
                    if chunk.overlaps(start, end) {
                        out.push(chunk);
                    }
                }
            }
        }
        out
    }

    /// Delete chunks of a stream entirely older than `horizon`. Returns
    /// how many objects were removed. A stream whose last chunk goes also
    /// loses its series-index entry.
    pub fn delete_before(&self, fingerprint: u64, horizon: Timestamp) -> usize {
        let prefix = format!("chunks/{fingerprint:016x}/");
        let mut removed = 0;
        for key in self.store.list(&prefix) {
            if let Some(data) = self.store.get(&key) {
                if let Ok(chunk) = object_to_chunk(&data) {
                    if chunk.max_ts < horizon && self.store.delete(&key) {
                        removed += 1;
                    }
                }
            }
        }
        if removed > 0 && self.store.list(&prefix).is_empty() {
            self.store.delete(&series_key(fingerprint));
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::LogEntry;

    fn chunk(lines: usize, base_ts: Timestamp) -> SealedChunk {
        let entries: Vec<LogEntry> =
            (0..lines).map(|i| LogEntry::new(base_ts + i as i64, format!("line {i}"))).collect();
        SealedChunk::from_entries(&entries)
    }

    #[test]
    fn object_roundtrip() {
        let c = chunk(50, 1_000);
        let obj = chunk_to_object(&c);
        let back = object_to_chunk(&obj).unwrap();
        assert_eq!(back.count, c.count);
        assert_eq!(back.min_ts, c.min_ts);
        assert_eq!(back.max_ts, c.max_ts);
        assert_eq!(back.decode().unwrap(), c.decode().unwrap());
    }

    #[test]
    fn corrupt_objects_rejected() {
        let c = chunk(5, 0);
        let mut obj = chunk_to_object(&c).to_vec();
        obj.truncate(obj.len() - 1);
        assert!(object_to_chunk(&obj).is_err());
        assert!(object_to_chunk(&[]).is_err());
    }

    #[test]
    fn persist_fetch_by_range() {
        let store = ChunkStore::new();
        store.persist(42, &chunk(10, 0)); // ts 0..9
        store.persist(42, &chunk(10, 1_000)); // ts 1000..1009
        store.persist(7, &chunk(10, 0)); // other stream
        let got = store.fetch(42, -1, 500);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].min_ts, 0);
        let got = store.fetch(42, -1, 2_000);
        assert_eq!(got.len(), 2);
        assert!(store.fetch(99, -1, 2_000).is_empty());
        assert_eq!(store.objects().object_count(), 3);
    }

    #[test]
    fn delete_before_removes_old_objects() {
        let store = ChunkStore::new();
        store.persist(1, &chunk(10, 0));
        store.persist(1, &chunk(10, 10_000));
        assert_eq!(store.delete_before(1, 5_000), 1);
        assert_eq!(store.objects().object_count(), 1);
        assert!(store.fetch(1, -1, 5_000).is_empty());
        assert_eq!(store.fetch(1, -1, 20_000).len(), 1);
    }

    #[test]
    fn empty_chunks_not_persisted() {
        let store = ChunkStore::new();
        store.persist(1, &SealedChunk::from_entries(&[]));
        assert_eq!(store.objects().object_count(), 0);
    }

    #[test]
    fn mem_store_list_prefix() {
        let store = MemObjectStore::new();
        store.put("a/1".into(), Bytes::from_static(b"x"));
        store.put("a/2".into(), Bytes::from_static(b"y"));
        store.put("b/1".into(), Bytes::from_static(b"z"));
        assert_eq!(store.list("a/"), vec!["a/1", "a/2"]);
        assert_eq!(store.stored_bytes(), 3);
        assert!(store.delete("a/1"));
        assert!(!store.delete("a/1"));
    }
}

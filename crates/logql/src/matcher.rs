//! Label matchers and stream selectors (shared with the TSDB's PromQL
//! subset — both languages select series/streams the same way).

use omni_model::LabelSet;
use omni_regexlite::Regex;
use std::fmt;
use std::sync::Arc;

/// Matcher operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOp {
    /// `=` exact equality.
    Eq,
    /// `!=` inequality.
    Neq,
    /// `=~` regex (full-value anchored, Prometheus semantics).
    Re,
    /// `!~` negated regex.
    NotRe,
}

impl fmt::Display for MatchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchOp::Eq => "=",
            MatchOp::Neq => "!=",
            MatchOp::Re => "=~",
            MatchOp::NotRe => "!~",
        })
    }
}

/// One `name op "value"` matcher.
#[derive(Debug, Clone)]
pub struct Matcher {
    /// Label name.
    pub name: String,
    /// Operator.
    pub op: MatchOp,
    /// Right-hand value (regex source for `=~`/`!~`).
    pub value: String,
    regex: Option<Arc<Regex>>,
}

impl PartialEq for Matcher {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.op == other.op && self.value == other.value
    }
}

impl Matcher {
    /// Build a matcher, compiling the regex for `=~`/`!~`.
    pub fn new(name: &str, op: MatchOp, value: &str) -> Result<Self, String> {
        let regex = match op {
            MatchOp::Re | MatchOp::NotRe => Some(Arc::new(
                Regex::new(value).map_err(|e| format!("bad regex in matcher {name}: {e}"))?,
            )),
            _ => None,
        };
        Ok(Self { name: name.to_string(), op, value: value.to_string(), regex })
    }

    /// Equality matcher shorthand.
    pub fn eq(name: &str, value: &str) -> Self {
        Self::new(name, MatchOp::Eq, value).unwrap()
    }

    /// Whether a raw value satisfies this matcher. Missing labels are
    /// treated as the empty string, like Prometheus.
    pub fn matches_value(&self, value: &str) -> bool {
        match self.op {
            MatchOp::Eq => value == self.value,
            MatchOp::Neq => value != self.value,
            MatchOp::Re => self.regex.as_ref().unwrap().is_full_match(value),
            MatchOp::NotRe => !self.regex.as_ref().unwrap().is_full_match(value),
        }
    }

    /// Whether a label set satisfies this matcher.
    pub fn matches(&self, labels: &LabelSet) -> bool {
        self.matches_value(labels.get(&self.name).unwrap_or(""))
    }
}

impl fmt::Display for Matcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{:?}", self.name, self.op, self.value)
    }
}

/// A stream selector: the conjunction of its matchers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Selector {
    /// All matchers (ANDed).
    pub matchers: Vec<Matcher>,
}

impl Selector {
    /// Build from matchers.
    pub fn new(matchers: Vec<Matcher>) -> Self {
        Self { matchers }
    }

    /// Whether a label set satisfies every matcher.
    pub fn matches(&self, labels: &LabelSet) -> bool {
        self.matchers.iter().all(|m| m.matches(labels))
    }

    /// The equality matchers — stores use these for index lookups.
    pub fn equality_matchers(&self) -> impl Iterator<Item = (&str, &str)> {
        self.matchers
            .iter()
            .filter(|m| m.op == MatchOp::Eq)
            .map(|m| (m.name.as_str(), m.value.as_str()))
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.matchers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omni_model::labels;

    #[test]
    fn equality_and_inequality() {
        let l = labels!("cluster" => "perlmutter");
        assert!(Matcher::eq("cluster", "perlmutter").matches(&l));
        assert!(!Matcher::eq("cluster", "cori").matches(&l));
        assert!(Matcher::new("cluster", MatchOp::Neq, "cori").unwrap().matches(&l));
    }

    #[test]
    fn missing_label_is_empty_string() {
        let l = LabelSet::new();
        assert!(Matcher::eq("x", "").matches(&l));
        assert!(Matcher::new("x", MatchOp::Neq, "v").unwrap().matches(&l));
        assert!(Matcher::new("x", MatchOp::Re, ".*").unwrap().matches(&l));
        assert!(!Matcher::new("x", MatchOp::Re, ".+").unwrap().matches(&l));
    }

    #[test]
    fn regex_is_fully_anchored() {
        let l = labels!("app" => "fabric_manager_monitor");
        assert!(Matcher::new("app", MatchOp::Re, "fabric.*").unwrap().matches(&l));
        assert!(!Matcher::new("app", MatchOp::Re, "fabric").unwrap().matches(&l));
        assert!(Matcher::new("app", MatchOp::NotRe, "loki.*").unwrap().matches(&l));
    }

    #[test]
    fn selector_conjunction() {
        let sel = Selector::new(vec![
            Matcher::eq("cluster", "perlmutter"),
            Matcher::eq("data_type", "redfish_event"),
        ]);
        assert!(sel.matches(&labels!(
            "cluster" => "perlmutter", "data_type" => "redfish_event", "extra" => "ok"
        )));
        assert!(!sel.matches(&labels!("cluster" => "perlmutter")));
    }

    #[test]
    fn bad_regex_is_an_error() {
        assert!(Matcher::new("a", MatchOp::Re, "(").is_err());
    }

    #[test]
    fn display_roundtrips_through_parser_syntax() {
        let sel = Selector::new(vec![Matcher::eq("a", "b")]);
        assert_eq!(sel.to_string(), r#"{a="b"}"#);
    }
}

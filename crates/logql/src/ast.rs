//! The LogQL abstract syntax tree.

use crate::matcher::Selector;
use crate::pattern::PatternExpr;
use omni_regexlite::Regex;
use std::fmt;
use std::sync::Arc;

/// A parsed expression: either a log (line-returning) query or a metric
/// (number-returning) query.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `{...} |= ... | json`
    Log(LogQuery),
    /// `sum(count_over_time({...}[5m])) by (...) > 0`
    Metric(MetricQuery),
}

/// A log query: selector plus pipeline stages.
#[derive(Debug, Clone)]
pub struct LogQuery {
    /// Stream selector.
    pub selector: Selector,
    /// Pipeline stages in order.
    pub stages: Vec<Stage>,
}

/// Label-filter comparison operator (also used for vector-scalar
/// comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl CmpOp {
    /// Apply to two floats.
    pub fn apply(&self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Neq => l != r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Neq => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        })
    }
}

/// One pipeline stage.
#[derive(Debug, Clone)]
pub enum Stage {
    /// `|= "text"` — line must contain.
    LineContains(String),
    /// `!= "text"` — line must not contain.
    LineNotContains(String),
    /// `|~ "regex"` — line must match.
    LineRegex(Arc<Regex>),
    /// `!~ "regex"` — line must not match.
    LineNotRegex(Arc<Regex>),
    /// `| json` — parse the line as JSON and add flattened labels.
    Json,
    /// `| logfmt` — parse `k=v` pairs into labels.
    Logfmt,
    /// `| pattern "<a> ... <b>"`.
    Pattern(PatternExpr),
    /// `| regexp "(?P<name>...)"` — named captures become labels.
    Regexp(Arc<Regex>),
    /// `| label op "value"` — string label filter.
    LabelCmpString {
        /// Label name.
        label: String,
        /// `=` or `!=` (regex variants use `LabelCmpRegex`).
        negated: bool,
        /// Right-hand value.
        value: String,
    },
    /// `| label =~ "re"` / `| label !~ "re"`.
    LabelCmpRegex {
        /// Label name.
        label: String,
        /// True for `!~`.
        negated: bool,
        /// Compiled regex.
        regex: Arc<Regex>,
    },
    /// `| label > 10` — numeric label filter (label parsed as f64;
    /// non-numeric values fail the filter).
    LabelCmpNumeric {
        /// Label name.
        label: String,
        /// Comparison.
        op: CmpOp,
        /// Scalar.
        value: f64,
    },
    /// `| line_format "{{.label}} ..."`.
    LineFormat(String),
    /// `| label_format new=old` (rename) or `new="{{.a}}-{{.b}}"`.
    LabelFormat {
        /// Destination label.
        dst: String,
        /// Source: a label name or a template.
        src: LabelFormatSrc,
    },
    /// `| unwrap label` — marks the value to aggregate over; recorded on
    /// the pipeline and consumed by `*_over_time` evaluation.
    Unwrap(String),
}

/// Source of a `label_format` assignment.
#[derive(Debug, Clone)]
pub enum LabelFormatSrc {
    /// Rename from another label.
    Rename(String),
    /// Render a `{{.label}}` template.
    Template(String),
}

/// Range-aggregation operator over a log range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeAggOp {
    /// `count_over_time` — entries per window.
    CountOverTime,
    /// `rate` — entries per second.
    Rate,
    /// `bytes_over_time` — line bytes per window.
    BytesOverTime,
    /// `bytes_rate` — line bytes per second.
    BytesRate,
    /// `sum_over_time` (requires `unwrap`).
    SumOverTime,
    /// `avg_over_time` (requires `unwrap`).
    AvgOverTime,
    /// `min_over_time` (requires `unwrap`).
    MinOverTime,
    /// `max_over_time` (requires `unwrap`).
    MaxOverTime,
    /// `first_over_time` (requires `unwrap`).
    FirstOverTime,
    /// `last_over_time` (requires `unwrap`).
    LastOverTime,
}

impl RangeAggOp {
    /// Whether the op consumes unwrapped sample values.
    pub fn needs_unwrap(&self) -> bool {
        matches!(
            self,
            RangeAggOp::SumOverTime
                | RangeAggOp::AvgOverTime
                | RangeAggOp::MinOverTime
                | RangeAggOp::MaxOverTime
                | RangeAggOp::FirstOverTime
                | RangeAggOp::LastOverTime
        )
    }

    /// Parse the function name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "count_over_time" => RangeAggOp::CountOverTime,
            "rate" => RangeAggOp::Rate,
            "bytes_over_time" => RangeAggOp::BytesOverTime,
            "bytes_rate" => RangeAggOp::BytesRate,
            "sum_over_time" => RangeAggOp::SumOverTime,
            "avg_over_time" => RangeAggOp::AvgOverTime,
            "min_over_time" => RangeAggOp::MinOverTime,
            "max_over_time" => RangeAggOp::MaxOverTime,
            "first_over_time" => RangeAggOp::FirstOverTime,
            "last_over_time" => RangeAggOp::LastOverTime,
            _ => return None,
        })
    }
}

/// Vector-aggregation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorAggOp {
    /// `sum`
    Sum,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `avg`
    Avg,
    /// `count`
    Count,
    /// `topk(k, ...)`
    Topk(usize),
    /// `bottomk(k, ...)`
    Bottomk(usize),
}

/// `by (...)` vs `without (...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// Keep only the listed labels.
    By,
    /// Drop the listed labels.
    Without,
}

/// A grouping clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// by/without.
    pub kind: GroupKind,
    /// Label names.
    pub labels: Vec<String>,
}

/// A metric query.
#[derive(Debug, Clone)]
pub enum MetricQuery {
    /// `count_over_time({...} ... [range])`
    RangeAgg {
        /// Operator.
        op: RangeAggOp,
        /// Inner log query (pipeline may include `unwrap`).
        query: LogQuery,
        /// Range window in nanoseconds.
        range_ns: i64,
    },
    /// `sum by (...) (inner)`
    VectorAgg {
        /// Operator.
        op: VectorAggOp,
        /// Optional grouping.
        grouping: Option<Grouping>,
        /// Inner metric query.
        inner: Box<MetricQuery>,
    },
    /// `inner CMP scalar` — keeps vector elements satisfying the
    /// comparison (alerting-rule threshold form).
    Filter {
        /// Inner metric query.
        inner: Box<MetricQuery>,
        /// Comparison.
        op: CmpOp,
        /// Threshold.
        scalar: f64,
    },
}

impl MetricQuery {
    /// The selector at the bottom of the query (for store planning).
    pub fn selector(&self) -> &Selector {
        match self {
            MetricQuery::RangeAgg { query, .. } => &query.selector,
            MetricQuery::VectorAgg { inner, .. } => inner.selector(),
            MetricQuery::Filter { inner, .. } => inner.selector(),
        }
    }

    /// The log query at the bottom of the chain (our AST carries exactly
    /// one range aggregation per metric query).
    pub fn log_query(&self) -> &LogQuery {
        match self {
            MetricQuery::RangeAgg { query, .. } => query,
            MetricQuery::VectorAgg { inner, .. } => inner.log_query(),
            MetricQuery::Filter { inner, .. } => inner.log_query(),
        }
    }

    /// Mutable access to the log query at the bottom of the chain — how
    /// the multi-tenant frontend injects its `__tenant__` scope matcher
    /// into an already-parsed metric query.
    pub fn log_query_mut(&mut self) -> &mut LogQuery {
        match self {
            MetricQuery::RangeAgg { query, .. } => query,
            MetricQuery::VectorAgg { inner, .. } => inner.log_query_mut(),
            MetricQuery::Filter { inner, .. } => inner.log_query_mut(),
        }
    }

    /// The range window of the underlying range aggregation.
    pub fn range_ns(&self) -> i64 {
        match self {
            MetricQuery::RangeAgg { range_ns, .. } => *range_ns,
            MetricQuery::VectorAgg { inner, .. } => inner.range_ns(),
            MetricQuery::Filter { inner, .. } => inner.range_ns(),
        }
    }
}

impl Expr {
    /// The selector at the bottom of the expression.
    pub fn selector(&self) -> &Selector {
        match self {
            Expr::Log(q) => &q.selector,
            Expr::Metric(m) => m.selector(),
        }
    }
}

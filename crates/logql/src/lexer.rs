//! LogQL lexer.

use std::fmt;

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier / keyword / function name.
    Ident(String),
    /// Quoted string (double, single or backtick quotes).
    Str(String),
    /// Number literal.
    Number(f64),
    /// Duration literal (`5m`, `1h30m`) in nanoseconds.
    Duration(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|=`
    PipeExact,
    /// `!=` (context decides: line filter vs matcher vs comparison).
    Neq,
    /// `|~`
    PipeRegex,
    /// `!~`
    NotRegex,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `=~`
    ReMatch,
    /// `==`
    EqEq,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Duration(d) => write!(f, "{d}ns"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::PipeExact => write!(f, "|="),
            Token::Neq => write!(f, "!="),
            Token::PipeRegex => write!(f, "|~"),
            Token::NotRegex => write!(f, "!~"),
            Token::Pipe => write!(f, "|"),
            Token::Eq => write!(f, "="),
            Token::ReMatch => write!(f, "=~"),
            Token::EqEq => write!(f, "=="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}

/// Lexing error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a query.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            b'}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::PipeExact);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'~') {
                    out.push(Token::PipeRegex);
                    i += 2;
                } else {
                    out.push(Token::Pipe);
                    i += 1;
                }
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Neq);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'~') {
                    out.push(Token::NotRegex);
                    i += 2;
                } else {
                    return Err(LexError { offset: i, message: "lonely '!'".into() });
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'~') {
                    out.push(Token::ReMatch);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    out.push(Token::Eq);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'"' | b'\'' | b'`' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let b = input.as_bytes();
    let quote = b[start];
    let mut out = String::new();
    let mut i = start + 1;
    while i < b.len() {
        let c = b[i];
        if c == quote {
            return Ok((out, i + 1));
        }
        if c == b'\\' && quote != b'`' {
            i += 1;
            match b.get(i) {
                Some(b'n') => out.push('\n'),
                Some(b't') => out.push('\t'),
                Some(b'r') => out.push('\r'),
                Some(b'\\') => out.push('\\'),
                Some(&q) if q == quote => out.push(q as char),
                Some(&c) if c.is_ascii() => {
                    // Preserve unknown escapes verbatim (regex sources
                    // like "\d" travel through strings).
                    out.push('\\');
                    out.push(c as char);
                }
                Some(_) => {
                    // Backslash before a multibyte char: keep the
                    // backslash and let the char be consumed normally.
                    out.push('\\');
                    continue;
                }
                None => return Err(LexError { offset: i, message: "trailing backslash".into() }),
            }
            i += 1;
        } else {
            // Consume one UTF-8 scalar.
            let ch = input[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(LexError { offset: start, message: "unterminated string".into() })
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let b = input.as_bytes();
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
        i += 1;
    }
    // Duration suffix?
    if i < b.len() && matches!(b[i], b's' | b'm' | b'h' | b'd' | b'w' | b'y' | b'u' | b'n') {
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        let text = &input[start..j];
        match omni_model::time::parse_duration(text) {
            Ok(ns) => return Ok((Token::Duration(ns), j)),
            Err(_) => {
                return Err(LexError {
                    offset: start,
                    message: format!("invalid duration {text:?}"),
                })
            }
        }
    }
    let text = &input[start..i];
    text.parse::<f64>()
        .map(|n| (Token::Number(n), i))
        .map_err(|_| LexError { offset: start, message: format!("invalid number {text:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_tokens() {
        let toks = lex(r#"{app="fm", x!="y"}"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBrace,
                Token::Ident("app".into()),
                Token::Eq,
                Token::Str("fm".into()),
                Token::Comma,
                Token::Ident("x".into()),
                Token::Neq,
                Token::Str("y".into()),
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn line_filter_tokens() {
        let toks = lex(r#"|= "leak" != "dry" |~ `x\d+` !~ 'z'"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::PipeExact,
                Token::Str("leak".into()),
                Token::Neq,
                Token::Str("dry".into()),
                Token::PipeRegex,
                Token::Str(r"x\d+".into()),
                Token::NotRegex,
                Token::Str("z".into()),
            ]
        );
    }

    #[test]
    fn durations_and_numbers() {
        let toks = lex("[60m] 5 2.5 1h30m").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Duration(3600 * 1_000_000_000),
                Token::RBracket,
                Token::Number(5.0),
                Token::Number(2.5),
                Token::Duration(5400 * 1_000_000_000),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("> >= < <= == =~").unwrap();
        assert_eq!(
            toks,
            vec![Token::Gt, Token::Ge, Token::Lt, Token::Le, Token::EqEq, Token::ReMatch]
        );
    }

    #[test]
    fn arithmetic_operators() {
        let toks = lex("+ - * /").unwrap();
        assert_eq!(toks, vec![Token::Plus, Token::Minus, Token::Star, Token::Slash]);
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""a\"b\nc""#).unwrap();
        assert_eq!(toks, vec![Token::Str("a\"b\nc".into())]);
        // Backtick strings are raw.
        let toks = lex(r#"`a\d+`"#).unwrap();
        assert_eq!(toks, vec![Token::Str(r"a\d+".into())]);
        // Unknown escapes pass through for regex sources.
        let toks = lex(r#""x\d+""#).unwrap();
        assert_eq!(toks, vec![Token::Str(r"x\d+".into())]);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("#").is_err());
        assert!(lex("! x").is_err());
        // A bad duration suffix is a lex error...
        assert!(lex("5m3x").is_err());
        // ...but a non-duration letter run after a number is two tokens
        // (the parser rejects it in context).
        assert_eq!(
            lex("5parsecs").unwrap(),
            vec![Token::Number(5.0), Token::Ident("parsecs".into())]
        );
    }
}

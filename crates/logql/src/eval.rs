//! Aggregation evaluation: range aggregations over processed entries,
//! vector aggregations, threshold filters, and the instant/range
//! orchestrator the store's query engine drives.

use crate::ast::{CmpOp, GroupKind, Grouping, LogQuery, MetricQuery, RangeAggOp, VectorAggOp};
use omni_model::{LabelSet, Sample, Timestamp, NANOS_PER_SEC};
use std::collections::BTreeMap;

/// One pipeline-processed entry handed to a range aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeEntry {
    /// Entry timestamp.
    pub ts: Timestamp,
    /// Post-pipeline labels (grouping identity).
    pub labels: LabelSet,
    /// Line length in bytes (for `bytes_over_time`).
    pub line_bytes: usize,
    /// `| unwrap` value if the pipeline extracted one.
    pub unwrapped: Option<f64>,
}

/// An instant vector: one value per label set.
pub type InstantVector = Vec<(LabelSet, f64)>;

/// A range matrix: one series of samples per label set.
pub type Matrix = Vec<(LabelSet, Vec<Sample>)>;

/// Evaluate a range aggregation over the entries inside one window.
/// Entries are grouped by their post-pipeline labels, so multiple leaks in
/// different locations yield "multiple vectors with different labels
/// instead of one vector without labels" (§IV-A).
pub fn eval_range_agg(op: RangeAggOp, entries: &[RangeEntry], range_ns: i64) -> InstantVector {
    let mut groups: BTreeMap<LabelSet, Vec<&RangeEntry>> = BTreeMap::new();
    for e in entries {
        groups.entry(e.labels.clone()).or_default().push(e);
    }
    let secs = range_ns as f64 / NANOS_PER_SEC as f64;
    let mut out = Vec::with_capacity(groups.len());
    for (labels, group) in groups {
        let value = match op {
            RangeAggOp::CountOverTime => group.len() as f64,
            RangeAggOp::Rate => group.len() as f64 / secs,
            RangeAggOp::BytesOverTime => group.iter().map(|e| e.line_bytes as f64).sum(),
            RangeAggOp::BytesRate => group.iter().map(|e| e.line_bytes as f64).sum::<f64>() / secs,
            RangeAggOp::SumOverTime
            | RangeAggOp::AvgOverTime
            | RangeAggOp::MinOverTime
            | RangeAggOp::MaxOverTime
            | RangeAggOp::FirstOverTime
            | RangeAggOp::LastOverTime => {
                let values: Vec<(Timestamp, f64)> =
                    group.iter().filter_map(|e| e.unwrapped.map(|v| (e.ts, v))).collect();
                if values.is_empty() {
                    continue; // nothing unwrapped in this group
                }
                match op {
                    RangeAggOp::SumOverTime => values.iter().map(|&(_, v)| v).sum(),
                    RangeAggOp::AvgOverTime => {
                        values.iter().map(|&(_, v)| v).sum::<f64>() / values.len() as f64
                    }
                    RangeAggOp::MinOverTime => {
                        values.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min)
                    }
                    RangeAggOp::MaxOverTime => {
                        values.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
                    }
                    // Selected by timestamp, not arrival order: entries
                    // reach a window via per-chunk decodes and shard
                    // fan-out, so the slice is not guaranteed sorted.
                    // Ties keep the earliest (first) / latest (last)
                    // arrival, matching a stable sort by timestamp.
                    RangeAggOp::FirstOverTime => {
                        values.iter().copied().min_by_key(|&(ts, _)| ts).unwrap().1
                    }
                    RangeAggOp::LastOverTime => {
                        values.iter().copied().max_by_key(|&(ts, _)| ts).unwrap().1
                    }
                    _ => unreachable!(),
                }
            }
        };
        out.push((labels, value));
    }
    out
}

/// Apply a vector aggregation with optional grouping.
pub fn eval_vector_agg(
    op: VectorAggOp,
    grouping: Option<&Grouping>,
    input: InstantVector,
) -> InstantVector {
    // topk/bottomk keep original label sets; handle separately.
    if let VectorAggOp::Topk(k) | VectorAggOp::Bottomk(k) = op {
        let mut v = input;
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if matches!(op, VectorAggOp::Bottomk(_)) {
            v.reverse();
        }
        v.truncate(k);
        v.sort_by(|a, b| a.0.cmp(&b.0));
        return v;
    }
    let mut groups: BTreeMap<LabelSet, Vec<f64>> = BTreeMap::new();
    for (labels, value) in input {
        let key = match grouping {
            Some(Grouping { kind: GroupKind::By, labels: keys }) => labels.project(keys),
            Some(Grouping { kind: GroupKind::Without, labels: keys }) => labels.without(keys),
            None => LabelSet::new(),
        };
        groups.entry(key).or_default().push(value);
    }
    groups
        .into_iter()
        .map(|(labels, values)| {
            let v = match op {
                VectorAggOp::Sum => values.iter().sum(),
                VectorAggOp::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
                VectorAggOp::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                VectorAggOp::Avg => values.iter().sum::<f64>() / values.len() as f64,
                VectorAggOp::Count => values.len() as f64,
                VectorAggOp::Topk(_) | VectorAggOp::Bottomk(_) => unreachable!(),
            };
            (labels, v)
        })
        .collect()
}

/// Keep vector elements whose value satisfies `op scalar`.
pub fn eval_filter(input: InstantVector, op: CmpOp, scalar: f64) -> InstantVector {
    input.into_iter().filter(|(_, v)| op.apply(*v, scalar)).collect()
}

/// Evaluate a full metric query at one instant.
///
/// `fetch` is the storage callback: given the bottom log query and a
/// half-open window `(start, end]`, it returns the pipeline-processed
/// entries. The engine in the Loki crate supplies it; tests can fake it.
pub fn eval_metric_at<F>(mq: &MetricQuery, at: Timestamp, fetch: &mut F) -> InstantVector
where
    F: FnMut(&LogQuery, Timestamp, Timestamp) -> Vec<RangeEntry>,
{
    match mq {
        MetricQuery::RangeAgg { op, query, range_ns } => {
            // `at` may be a sentinel near `i64::MIN`; a plain subtraction
            // would overflow past the minimum.
            let entries = fetch(query, at.saturating_sub(*range_ns), at);
            eval_range_agg(*op, &entries, *range_ns)
        }
        MetricQuery::VectorAgg { op, grouping, inner } => {
            let input = eval_metric_at(inner, at, fetch);
            eval_vector_agg(*op, grouping.as_ref(), input)
        }
        MetricQuery::Filter { inner, op, scalar } => {
            let input = eval_metric_at(inner, at, fetch);
            eval_filter(input, *op, *scalar)
        }
    }
}

/// Evaluate a metric query over `[start, end]` at `step_ns` intervals,
/// producing a matrix (the shape Grafana plots in Figure 5).
pub fn eval_metric_range<F>(
    mq: &MetricQuery,
    start: Timestamp,
    end: Timestamp,
    step_ns: i64,
    fetch: &mut F,
) -> Matrix
where
    F: FnMut(&LogQuery, Timestamp, Timestamp) -> Vec<RangeEntry>,
{
    assert!(step_ns > 0, "step must be positive");
    let mut series: BTreeMap<LabelSet, Vec<Sample>> = BTreeMap::new();
    let mut t = start;
    while t <= end {
        for (labels, value) in eval_metric_at(mq, t, fetch) {
            series.entry(labels).or_default().push(Sample::new(t, value));
        }
        t += step_ns;
    }
    series.into_iter().collect()
}

/// Debug/CLI rendering of an instant vector, one element per line:
/// `{a="b"} => 1`.
pub fn instant_vector_to_string(v: &InstantVector) -> String {
    let mut out = String::new();
    for (labels, value) in v {
        out.push_str(&format!("{labels} => {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::Expr;
    use omni_model::labels;

    fn entry(ts: Timestamp, labels: LabelSet, bytes: usize, unwrapped: Option<f64>) -> RangeEntry {
        RangeEntry { ts, labels, line_bytes: bytes, unwrapped }
    }

    #[test]
    fn count_over_time_groups_by_labels() {
        let a = labels!("loc" => "x1");
        let b = labels!("loc" => "x2");
        let entries = vec![
            entry(1, a.clone(), 10, None),
            entry(2, a.clone(), 10, None),
            entry(3, b.clone(), 10, None),
        ];
        let v = eval_range_agg(RangeAggOp::CountOverTime, &entries, 60 * NANOS_PER_SEC);
        assert_eq!(v, vec![(a, 2.0), (b, 1.0)]);
    }

    #[test]
    fn rate_divides_by_window_seconds() {
        let l = labels!("a" => "b");
        let entries: Vec<_> = (0..120).map(|i| entry(i, l.clone(), 1, None)).collect();
        let v = eval_range_agg(RangeAggOp::Rate, &entries, 60 * NANOS_PER_SEC);
        assert_eq!(v, vec![(l, 2.0)]);
    }

    #[test]
    fn bytes_over_time_sums_line_bytes() {
        let l = labels!("a" => "b");
        let entries = vec![entry(1, l.clone(), 100, None), entry(2, l.clone(), 50, None)];
        let v = eval_range_agg(RangeAggOp::BytesOverTime, &entries, NANOS_PER_SEC);
        assert_eq!(v, vec![(l, 150.0)]);
    }

    #[test]
    fn unwrapped_aggregations() {
        let l = labels!("a" => "b");
        let entries = vec![
            entry(1, l.clone(), 0, Some(10.0)),
            entry(2, l.clone(), 0, Some(30.0)),
            entry(3, l.clone(), 0, None), // unwrap failed; skipped
        ];
        assert_eq!(
            eval_range_agg(RangeAggOp::SumOverTime, &entries, NANOS_PER_SEC),
            vec![(l.clone(), 40.0)]
        );
        assert_eq!(
            eval_range_agg(RangeAggOp::AvgOverTime, &entries, NANOS_PER_SEC),
            vec![(l.clone(), 20.0)]
        );
        assert_eq!(
            eval_range_agg(RangeAggOp::MinOverTime, &entries, NANOS_PER_SEC),
            vec![(l.clone(), 10.0)]
        );
        assert_eq!(
            eval_range_agg(RangeAggOp::MaxOverTime, &entries, NANOS_PER_SEC),
            vec![(l.clone(), 30.0)]
        );
        assert_eq!(
            eval_range_agg(RangeAggOp::FirstOverTime, &entries, NANOS_PER_SEC),
            vec![(l.clone(), 10.0)]
        );
        assert_eq!(
            eval_range_agg(RangeAggOp::LastOverTime, &entries, NANOS_PER_SEC),
            vec![(l, 30.0)]
        );
    }

    #[test]
    fn first_and_last_over_time_select_by_timestamp_not_arrival_order() {
        // Shard fan-out and per-chunk decodes don't promise sorted input:
        // the same window can arrive in any permutation. first/last must
        // pick by timestamp regardless.
        let l = labels!("a" => "b");
        let shuffled = vec![
            entry(20, l.clone(), 0, Some(200.0)),
            entry(30, l.clone(), 0, Some(300.0)), // latest ts
            entry(10, l.clone(), 0, Some(100.0)), // earliest ts
            entry(25, l.clone(), 0, None),        // unwrap failed; ignored
        ];
        assert_eq!(
            eval_range_agg(RangeAggOp::FirstOverTime, &shuffled, NANOS_PER_SEC),
            vec![(l.clone(), 100.0)]
        );
        assert_eq!(
            eval_range_agg(RangeAggOp::LastOverTime, &shuffled, NANOS_PER_SEC),
            vec![(l.clone(), 300.0)]
        );
        // The order-selected aggregations must not depend on permutation:
        // every arrival order yields the same answer.
        let mut perm = shuffled.clone();
        perm.reverse();
        for op in [RangeAggOp::FirstOverTime, RangeAggOp::LastOverTime] {
            assert_eq!(
                eval_range_agg(op, &shuffled, NANOS_PER_SEC),
                eval_range_agg(op, &perm, NANOS_PER_SEC)
            );
        }
    }

    #[test]
    fn all_unwraps_failing_yields_empty() {
        let l = labels!("a" => "b");
        let entries = vec![entry(1, l, 0, None)];
        assert!(eval_range_agg(RangeAggOp::SumOverTime, &entries, NANOS_PER_SEC).is_empty());
    }

    #[test]
    fn vector_sum_by() {
        let input = vec![
            (labels!("sev" => "warn", "loc" => "x1"), 1.0),
            (labels!("sev" => "warn", "loc" => "x2"), 2.0),
            (labels!("sev" => "crit", "loc" => "x3"), 5.0),
        ];
        let g = Grouping { kind: GroupKind::By, labels: vec!["sev".into()] };
        let v = eval_vector_agg(VectorAggOp::Sum, Some(&g), input);
        assert_eq!(v, vec![(labels!("sev" => "crit"), 5.0), (labels!("sev" => "warn"), 3.0)]);
    }

    #[test]
    fn vector_without() {
        let input = vec![
            (labels!("sev" => "warn", "loc" => "x1"), 1.0),
            (labels!("sev" => "warn", "loc" => "x2"), 2.0),
        ];
        let g = Grouping { kind: GroupKind::Without, labels: vec!["loc".into()] };
        let v = eval_vector_agg(VectorAggOp::Max, Some(&g), input);
        assert_eq!(v, vec![(labels!("sev" => "warn"), 2.0)]);
    }

    #[test]
    fn vector_agg_without_grouping_collapses() {
        let input = vec![(labels!("a" => "1"), 1.0), (labels!("a" => "2"), 3.0)];
        let v = eval_vector_agg(VectorAggOp::Avg, None, input.clone());
        assert_eq!(v, vec![(LabelSet::new(), 2.0)]);
        let v = eval_vector_agg(VectorAggOp::Count, None, input);
        assert_eq!(v, vec![(LabelSet::new(), 2.0)]);
    }

    #[test]
    fn topk_keeps_original_labels() {
        let input = vec![
            (labels!("x" => "1"), 10.0),
            (labels!("x" => "2"), 30.0),
            (labels!("x" => "3"), 20.0),
        ];
        let v = eval_vector_agg(VectorAggOp::Topk(2), None, input.clone());
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|(l, _)| l.get("x") == Some("2")));
        assert!(v.iter().any(|(l, _)| l.get("x") == Some("3")));
        let v = eval_vector_agg(VectorAggOp::Bottomk(1), None, input);
        assert_eq!(v[0].1, 10.0);
    }

    #[test]
    fn filter_thresholds() {
        let input = vec![(labels!("a" => "1"), 0.0), (labels!("a" => "2"), 2.0)];
        let v = eval_filter(input, CmpOp::Gt, 0.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 2.0);
    }

    #[test]
    fn figure5_step_behaviour() {
        // The leak event happens at T. count_over_time(...[60m]) evaluated
        // across a range must step 0 -> 1 at T and back to 0 after T+60m.
        let event_ts = 3_600 * NANOS_PER_SEC;
        let q = match parse_expr(
            r#"sum(count_over_time({data_type="redfish_event"} [60m])) by (context)"#,
        )
        .unwrap()
        {
            Expr::Metric(m) => m,
            _ => panic!(),
        };
        let lbl = labels!("context" => "x1203c1b0", "data_type" => "redfish_event");
        let mut fetch = |_q: &LogQuery, start: Timestamp, end: Timestamp| {
            if start < event_ts && event_ts <= end {
                vec![entry(event_ts, lbl.clone(), 80, None)]
            } else {
                Vec::new()
            }
        };
        let step = 600 * NANOS_PER_SEC; // 10 min
        let m = eval_metric_range(&q, 0, 3 * 3_600 * NANOS_PER_SEC, step, &mut fetch);
        assert_eq!(m.len(), 1);
        let (labels, samples) = &m[0];
        assert_eq!(labels.get("context"), Some("x1203c1b0"));
        for s in samples {
            let in_window = s.ts >= event_ts && s.ts < event_ts + 3_600 * NANOS_PER_SEC;
            assert_eq!(s.value, if in_window { 1.0 } else { 0.0 }, "at ts {}", s.ts);
        }
        // The vector agg sums to 1 exactly while the event is inside the
        // 60-minute lookback.
        assert!(samples.iter().any(|s| s.value == 1.0));
    }

    #[test]
    fn render_instant_vector() {
        let v: InstantVector = vec![(labels!("a" => "b"), 1.0)];
        assert_eq!(instant_vector_to_string(&v), "{a=\"b\"} => 1\n");
    }
}

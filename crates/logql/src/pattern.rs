//! The LogQL `pattern` stage.
//!
//! "We extract more information from the message by leveraging a pattern
//! function in Loki:
//! `| pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>"`"
//! — §IV-B. A pattern expression alternates literals and `<capture>`
//! slots; matching walks the line, pinning literals and capturing the text
//! between them.

use std::fmt;

/// One token of a pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Literal text that must appear.
    Literal(String),
    /// A named capture (`None` for the anonymous `<_>`).
    Capture(Option<String>),
}

/// A compiled pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternExpr {
    toks: Vec<Tok>,
    source: String,
}

/// Pattern compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError(pub String);

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.0)
    }
}

impl std::error::Error for PatternError {}

impl PatternExpr {
    /// Compile a pattern. Rules (matching Loki): captures are
    /// `<identifier>` or `<_>`; two adjacent captures are invalid; at
    /// least one capture is required; duplicate names are invalid.
    pub fn compile(src: &str) -> Result<Self, PatternError> {
        let mut toks = Vec::new();
        let mut literal = String::new();
        let mut chars = src.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '<' {
                // Try to read an identifier up to '>'.
                let mut name = String::new();
                let mut ok = false;
                for c2 in chars.by_ref() {
                    if c2 == '>' {
                        ok = true;
                        break;
                    }
                    name.push(c2);
                }
                let valid_name = ok
                    && !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !name.chars().next().unwrap().is_ascii_digit();
                if valid_name {
                    if !literal.is_empty() {
                        toks.push(Tok::Literal(std::mem::take(&mut literal)));
                    }
                    if matches!(toks.last(), Some(Tok::Capture(_))) {
                        return Err(PatternError("consecutive captures".into()));
                    }
                    toks.push(Tok::Capture(if name == "_" { None } else { Some(name) }));
                } else {
                    // Not a capture: treat '<'…'>' (or the rest) literally.
                    literal.push('<');
                    literal.push_str(&name);
                    if ok {
                        literal.push('>');
                    }
                }
            } else {
                literal.push(c);
            }
        }
        if !literal.is_empty() {
            toks.push(Tok::Literal(literal));
        }
        let names: Vec<&String> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Capture(Some(n)) => Some(n),
                _ => None,
            })
            .collect();
        if names.is_empty() {
            return Err(PatternError("at least one named capture required".into()));
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != names.len() {
            return Err(PatternError("duplicate capture name".into()));
        }
        Ok(Self { toks, source: src.to_string() })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Names of the captures, in order.
    pub fn capture_names(&self) -> Vec<&str> {
        self.toks
            .iter()
            .filter_map(|t| match t {
                Tok::Capture(Some(n)) => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Match a line; on success returns `(name, captured_text)` pairs for
    /// the named captures.
    pub fn extract<'t>(&self, line: &'t str) -> Option<Vec<(&str, &'t str)>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut pending: Option<&Tok> = None; // a capture waiting for its right boundary
        for tok in &self.toks {
            match tok {
                Tok::Literal(lit) => {
                    match pending.take() {
                        Some(Tok::Capture(name)) => {
                            // Capture runs until the next occurrence of lit.
                            let found = line[pos..].find(lit.as_str())?;
                            if let Some(n) = name {
                                out.push((n.as_str(), &line[pos..pos + found]));
                            }
                            pos += found + lit.len();
                        }
                        _ => {
                            // Literal must match exactly here.
                            if !line[pos..].starts_with(lit.as_str()) {
                                return None;
                            }
                            pos += lit.len();
                        }
                    }
                }
                Tok::Capture(_) => {
                    pending = Some(tok);
                }
            }
        }
        if let Some(Tok::Capture(Some(n))) = pending {
            out.push((n.as_str(), &line[pos..]));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_switch_pattern() {
        // §IV-B's exact pattern and event line.
        let p =
            PatternExpr::compile("[<severity>] problem:<problem>, xname:<xname>, state:<state>")
                .unwrap();
        let line = "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN";
        let caps = p.extract(line).unwrap();
        assert_eq!(
            caps,
            vec![
                ("severity", "critical"),
                ("problem", "fm_switch_offline"),
                ("xname", "x1002c1r7b0"),
                ("state", "UNKNOWN"),
            ]
        );
    }

    #[test]
    fn anonymous_captures_are_skipped() {
        let p = PatternExpr::compile("<_> level=<level>").unwrap();
        let caps = p.extract("ts=123 level=warn").unwrap();
        assert_eq!(caps, vec![("level", "warn")]);
    }

    #[test]
    fn leading_literal_anchors_at_start() {
        let p = PatternExpr::compile("ERR: <msg>").unwrap();
        assert!(p.extract("ERR: disk full").is_some());
        assert!(p.extract("xx ERR: disk full").is_none());
    }

    #[test]
    fn missing_literal_fails() {
        let p = PatternExpr::compile("a=<a>, b=<b>").unwrap();
        assert!(p.extract("a=1 c=2").is_none());
    }

    #[test]
    fn invalid_patterns() {
        assert!(PatternExpr::compile("<a><b>").is_err());
        assert!(PatternExpr::compile("no captures").is_err());
        assert!(PatternExpr::compile("<a> x <a>").is_err());
        assert!(PatternExpr::compile("<_>").is_err()); // only anonymous
    }

    #[test]
    fn angle_brackets_without_valid_name_are_literal() {
        let p = PatternExpr::compile("<1x> <name>").unwrap();
        let caps = p.extract("<1x> value").unwrap();
        assert_eq!(caps, vec![("name", "value")]);
    }

    #[test]
    fn trailing_capture_takes_rest() {
        let p = PatternExpr::compile("msg:<m>").unwrap();
        let caps = p.extract("msg:everything after, even commas").unwrap();
        assert_eq!(caps, vec![("m", "everything after, even commas")]);
    }

    #[test]
    fn capture_names_listed_in_order() {
        let p = PatternExpr::compile("[<severity>] <_> x=<x>").unwrap();
        assert_eq!(p.capture_names(), vec!["severity", "x"]);
    }
}

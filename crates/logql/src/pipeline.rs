//! Log pipeline execution: one entry in, zero-or-one processed entry out.

use crate::ast::{LabelFormatSrc, Stage};
use omni_model::LabelSet;

/// An entry after pipeline processing.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessedEntry {
    /// Possibly rewritten line (`line_format`).
    pub line: String,
    /// Stream labels plus everything the stages extracted.
    pub labels: LabelSet,
    /// Value extracted by `| unwrap`, if any.
    pub unwrapped: Option<f64>,
}

/// Label Loki attaches when a parser stage fails; the entry survives so
/// operators can find broken lines.
pub const ERROR_LABEL: &str = "__error__";

/// A compiled pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Build from parsed stages.
    pub fn new(stages: Vec<Stage>) -> Self {
        Self { stages }
    }

    /// Whether any stage extracts labels (forces per-line work even for
    /// count-style aggregations).
    pub fn has_parser_stage(&self) -> bool {
        self.stages.iter().any(|s| {
            matches!(s, Stage::Json | Stage::Logfmt | Stage::Pattern(_) | Stage::Regexp(_))
        })
    }

    /// Run the pipeline on one entry. `None` means a filter dropped it.
    pub fn process(&self, line: &str, stream_labels: &LabelSet) -> Option<ProcessedEntry> {
        let mut entry = ProcessedEntry {
            line: line.to_string(),
            labels: stream_labels.clone(),
            unwrapped: None,
        };
        for stage in &self.stages {
            match stage {
                Stage::LineContains(s) => {
                    if !entry.line.contains(s.as_str()) {
                        return None;
                    }
                }
                Stage::LineNotContains(s) => {
                    if entry.line.contains(s.as_str()) {
                        return None;
                    }
                }
                Stage::LineRegex(re) => {
                    if !re.is_match(&entry.line) {
                        return None;
                    }
                }
                Stage::LineNotRegex(re) => {
                    if re.is_match(&entry.line) {
                        return None;
                    }
                }
                Stage::Json => match omni_json::parse(&entry.line) {
                    Ok(v) => {
                        for (k, val) in omni_json::flatten(&v) {
                            add_extracted(&mut entry.labels, &k, &val);
                        }
                    }
                    Err(_) => entry.labels.insert(ERROR_LABEL, "JSONParserErr"),
                },
                Stage::Logfmt => {
                    for (k, v) in parse_logfmt(&entry.line) {
                        add_extracted(&mut entry.labels, &k, &v);
                    }
                }
                Stage::Pattern(p) => match p.extract(&entry.line) {
                    Some(caps) => {
                        for (k, v) in caps {
                            let (k, v) = (k.to_string(), v.to_string());
                            add_extracted(&mut entry.labels, &k, &v);
                        }
                    }
                    None => entry.labels.insert(ERROR_LABEL, "PatternErr"),
                },
                Stage::Regexp(re) => match re.captures(&entry.line) {
                    Some(caps) => {
                        let pairs: Vec<(String, String)> = caps
                            .named_pairs()
                            .into_iter()
                            .map(|(k, v)| (k.to_string(), v.to_string()))
                            .collect();
                        for (k, v) in pairs {
                            add_extracted(&mut entry.labels, &k, &v);
                        }
                    }
                    None => entry.labels.insert(ERROR_LABEL, "RegexpErr"),
                },
                Stage::LabelCmpString { label, negated, value } => {
                    let actual = entry.labels.get(label).unwrap_or("");
                    if (actual == value) == *negated {
                        return None;
                    }
                }
                Stage::LabelCmpRegex { label, negated, regex } => {
                    let actual = entry.labels.get(label).unwrap_or("");
                    if regex.is_full_match(actual) == *negated {
                        return None;
                    }
                }
                Stage::LabelCmpNumeric { label, op, value } => {
                    let actual = entry.labels.get(label).and_then(|v| v.parse::<f64>().ok())?;
                    if !op.apply(actual, *value) {
                        return None;
                    }
                }
                Stage::LineFormat(tpl) => {
                    entry.line = render_template(tpl, &entry.labels);
                }
                Stage::LabelFormat { dst, src } => {
                    let value = match src {
                        LabelFormatSrc::Rename(from) => {
                            let v = entry.labels.get(from).unwrap_or("").to_string();
                            entry.labels.remove(from);
                            v
                        }
                        LabelFormatSrc::Template(tpl) => render_template(tpl, &entry.labels),
                    };
                    entry.labels.insert(dst.as_str(), value);
                }
                Stage::Unwrap(label) => {
                    let Some(v) = entry.labels.get(label).and_then(|v| v.parse::<f64>().ok())
                    else {
                        entry.labels.insert(ERROR_LABEL, "UnwrapErr");
                        continue;
                    };
                    entry.unwrapped = Some(v);
                }
            }
        }
        Some(entry)
    }

    /// Numeric-compare helper exposed for rule evaluation.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }
}

/// Insert an extracted label; on collision with an existing label the new
/// one gets Loki's `_extracted` suffix.
fn add_extracted(labels: &mut LabelSet, key: &str, value: &str) {
    if labels.contains(key) {
        labels.insert(format!("{key}_extracted"), value);
    } else {
        labels.insert(key, value);
    }
}

/// Minimal logfmt: `k=v` pairs separated by whitespace, values optionally
/// double-quoted.
fn parse_logfmt(line: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let key_start = i;
        while i < b.len() && b[i] != b'=' && !b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() || b[i] != b'=' {
            continue; // bare word, skip
        }
        let key = &line[key_start..i];
        i += 1; // '='
        let value = if i < b.len() && b[i] == b'"' {
            i += 1;
            let vstart = i;
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            let v = line[vstart..i.min(line.len())].replace("\\\"", "\"");
            i += 1; // closing quote
            v
        } else {
            let vstart = i;
            while i < b.len() && !b[i].is_ascii_whitespace() {
                i += 1;
            }
            line[vstart..i].to_string()
        };
        if !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            out.push((key.to_string(), value));
        }
    }
    out
}

/// Render a `{{.label}}` template against a label set; unknown labels
/// render empty.
pub fn render_template(tpl: &str, labels: &LabelSet) -> String {
    let mut out = String::with_capacity(tpl.len());
    let mut rest = tpl;
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        if let Some(end) = after.find("}}") {
            let expr = after[..end].trim();
            if let Some(name) = expr.strip_prefix('.') {
                out.push_str(labels.get(name.trim()).unwrap_or(""));
            }
            rest = &after[end + 2..];
        } else {
            out.push_str(&rest[start..]);
            return out;
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_log_query;
    use omni_model::labels;

    fn pipeline(q: &str) -> Pipeline {
        Pipeline::new(parse_log_query(q).unwrap().stages)
    }

    #[test]
    fn line_filters() {
        let p = pipeline(r#"{a="b"} |= "leak" != "cleared""#);
        let l = labels!("a" => "b");
        assert!(p.process("a leak happened", &l).is_some());
        assert!(p.process("no problems", &l).is_none());
        assert!(p.process("leak cleared", &l).is_none());
    }

    #[test]
    fn json_stage_extracts_paper_labels() {
        let p = pipeline(r#"{data_type="redfish_event"} | json"#);
        let stream = labels!("data_type" => "redfish_event", "cluster" => "perlmutter");
        let line = r#"{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}"#;
        let e = p.process(line, &stream).unwrap();
        assert_eq!(e.labels.get("Severity"), Some("Warning"));
        assert_eq!(e.labels.get("MessageId"), Some("CrayAlerts.1.0.CabinetLeakDetected"));
        assert_eq!(e.labels.get("cluster"), Some("perlmutter"));
        assert!(e.labels.get("Message").unwrap().contains("detected a leak"));
    }

    #[test]
    fn json_stage_flags_bad_lines() {
        let p = pipeline(r#"{a="b"} | json"#);
        let e = p.process("not json at all", &labels!("a" => "b")).unwrap();
        assert_eq!(e.labels.get(ERROR_LABEL), Some("JSONParserErr"));
    }

    #[test]
    fn json_collision_gets_extracted_suffix() {
        let p = pipeline(r#"{cluster="perlmutter"} | json"#);
        let e = p.process(r#"{"cluster":"inner"}"#, &labels!("cluster" => "perlmutter")).unwrap();
        assert_eq!(e.labels.get("cluster"), Some("perlmutter"));
        assert_eq!(e.labels.get("cluster_extracted"), Some("inner"));
    }

    #[test]
    fn pattern_stage_on_paper_switch_line() {
        let p = pipeline(
            r#"{app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>""#,
        );
        let stream = labels!("app" => "fabric_manager_monitor", "cluster" => "perlmutter");
        let line = "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN";
        let e = p.process(line, &stream).unwrap();
        assert_eq!(e.labels.get("severity"), Some("critical"));
        assert_eq!(e.labels.get("problem"), Some("fm_switch_offline"));
        assert_eq!(e.labels.get("xname"), Some("x1002c1r7b0"));
        assert_eq!(e.labels.get("state"), Some("UNKNOWN"));
    }

    #[test]
    fn regexp_stage_named_captures() {
        let p = pipeline(r#"{a="b"} | regexp "user=(?P<user>\w+)""#);
        let e = p.process("login user=alice ok", &labels!("a" => "b")).unwrap();
        assert_eq!(e.labels.get("user"), Some("alice"));
    }

    #[test]
    fn logfmt_stage() {
        let p = pipeline(r#"{a="b"} | logfmt"#);
        let e =
            p.process(r#"level=warn msg="kafka retry" attempt=3"#, &labels!("a" => "b")).unwrap();
        assert_eq!(e.labels.get("level"), Some("warn"));
        assert_eq!(e.labels.get("msg"), Some("kafka retry"));
        assert_eq!(e.labels.get("attempt"), Some("3"));
    }

    #[test]
    fn label_filters_after_parsing() {
        let p = pipeline(r#"{a="b"} | json | level = "error""#);
        let l = labels!("a" => "b");
        assert!(p.process(r#"{"level":"error"}"#, &l).is_some());
        assert!(p.process(r#"{"level":"info"}"#, &l).is_none());
    }

    #[test]
    fn numeric_label_filter_drops_non_numeric() {
        let p = pipeline(r#"{a="b"} | json | dur_ms > 100"#);
        let l = labels!("a" => "b");
        assert!(p.process(r#"{"dur_ms":250}"#, &l).is_some());
        assert!(p.process(r#"{"dur_ms":50}"#, &l).is_none());
        assert!(p.process(r#"{"dur_ms":"soon"}"#, &l).is_none());
        assert!(p.process(r#"{}"#, &l).is_none());
    }

    #[test]
    fn unwrap_extracts_value() {
        let p = pipeline(r#"{a="b"} | json | unwrap bytes"#);
        let e = p.process(r#"{"bytes":1024}"#, &labels!("a" => "b")).unwrap();
        assert_eq!(e.unwrapped, Some(1024.0));
        let e = p.process(r#"{"bytes":"n/a"}"#, &labels!("a" => "b")).unwrap();
        assert_eq!(e.unwrapped, None);
        assert_eq!(e.labels.get(ERROR_LABEL), Some("UnwrapErr"));
    }

    #[test]
    fn line_format_rewrites() {
        let p = pipeline(r#"{a="b"} | json | line_format "{{.level}}: {{.msg}}""#);
        let e = p.process(r#"{"level":"warn","msg":"hi"}"#, &labels!("a" => "b")).unwrap();
        assert_eq!(e.line, "warn: hi");
    }

    #[test]
    fn label_format_rename_and_template() {
        let p = pipeline(r#"{a="b"} | json | label_format loc=Context"#);
        let e = p.process(r#"{"Context":"x1203c1b0"}"#, &labels!("a" => "b")).unwrap();
        assert_eq!(e.labels.get("loc"), Some("x1203c1b0"));
        assert_eq!(e.labels.get("Context"), None);

        let p = pipeline(r#"{a="b"} | json | label_format id="{{.x}}-{{.y}}""#);
        let e = p.process(r#"{"x":"1","y":"2"}"#, &labels!("a" => "b")).unwrap();
        assert_eq!(e.labels.get("id"), Some("1-2"));
    }

    #[test]
    fn template_rendering_edge_cases() {
        let l = labels!("a" => "1");
        assert_eq!(render_template("{{.a}}", &l), "1");
        assert_eq!(render_template("{{.missing}}", &l), "");
        assert_eq!(render_template("plain", &l), "plain");
        assert_eq!(render_template("{{unclosed", &l), "{{unclosed");
        assert_eq!(render_template("{{ .a }}", &l), "1");
    }

    #[test]
    fn has_parser_stage() {
        assert!(pipeline(r#"{a="b"} | json"#).has_parser_stage());
        assert!(!pipeline(r#"{a="b"} |= "x""#).has_parser_stage());
    }
}

//! LogQL — "Grafana Loki's PromQL inspired query language, where queries
//! act as if they are a distributed grep to aggregate log sources" (§IV-A).
//!
//! The crate is storage-agnostic: it parses query text into an AST,
//! executes log pipelines over individual entries, and computes range /
//! vector aggregations over entry streams the store hands it. The Loki
//! crate supplies the storage side.
//!
//! The paper's queries all run through here, verbatim:
//!
//! ```text
//! {data_type="redfish_event"} |= "CabinetLeakDetected" | json
//! sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m]))
//!     by (severity, cluster, context, message_id, message)
//! {app="fabric_manager_monitor"} |= "fm_switch_offline"
//!     | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>"
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod matcher;
pub mod parser;
pub mod pattern;
pub mod pipeline;

pub use ast::{
    CmpOp, Expr, GroupKind, Grouping, LogQuery, MetricQuery, RangeAggOp, Stage, VectorAggOp,
};
pub use eval::{eval_range_agg, instant_vector_to_string, InstantVector, Matrix, RangeEntry};
pub use matcher::{MatchOp, Matcher, Selector};
pub use parser::{parse_expr, parse_log_query, parse_selector, ParseError};
pub use pattern::PatternExpr;
pub use pipeline::{Pipeline, ProcessedEntry};

#[cfg(test)]
mod paper_queries {
    use super::*;

    /// All queries the paper shows must parse.
    #[test]
    fn figures_parse() {
        let queries = [
            r#"{data_type="redfish_event"} |= "CabinetLeakDetected""#,
            r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, context, message_id, message)"#,
            r#"sum by (severity) (count_over_time({data_type="redfish_event"} | json [60m]))"#,
            r#"{app="fabric_manager_monitor"} |= "fm_switch_offline""#,
            r#"{app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>""#,
            r#"sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" [5m])) by (xname) > 0"#,
        ];
        for q in queries {
            parse_expr(q).unwrap_or_else(|e| panic!("query failed to parse: {q}\n  {e}"));
        }
    }
}

//! LogQL parser: token stream → AST.

use crate::ast::*;
use crate::lexer::{lex, Token};
use crate::matcher::{MatchOp, Matcher, Selector};
use crate::pattern::PatternExpr;
use omni_regexlite::Regex;
use std::fmt;
use std::sync::Arc;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "logql parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete expression (log or metric query).
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let toks = lex(input).map_err(|e| ParseError::new(e.to_string()))?;
    let mut p = Parser { toks, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError::new(format!("unexpected trailing token {}", p.toks[p.pos])));
    }
    Ok(expr)
}

/// Parse a log query (selector + pipeline), rejecting metric queries.
pub fn parse_log_query(input: &str) -> Result<LogQuery, ParseError> {
    match parse_expr(input)? {
        Expr::Log(q) => Ok(q),
        Expr::Metric(_) => Err(ParseError::new("expected a log query, found a metric query")),
    }
}

/// Parse a bare selector like `{app="fm"}`.
pub fn parse_selector(input: &str) -> Result<Selector, ParseError> {
    let q = parse_log_query(input)?;
    if !q.stages.is_empty() {
        return Err(ParseError::new("expected a bare selector without pipeline stages"));
    }
    Ok(q.selector)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if &t == tok => Ok(()),
            Some(t) => Err(ParseError::new(format!("expected {tok}, found {t}"))),
            None => Err(ParseError::new(format!("expected {tok}, found end of query"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError::new(format!("expected identifier, found {t}"))),
            None => Err(ParseError::new("expected identifier, found end of query")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(s),
            Some(t) => Err(ParseError::new(format!("expected string, found {t}"))),
            None => Err(ParseError::new("expected string, found end of query")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::LBrace) => {
                let q = self.log_query()?;
                Ok(Expr::Log(q))
            }
            Some(Token::Ident(_)) => {
                let m = self.metric_query()?;
                Ok(Expr::Metric(self.maybe_filter(m)?))
            }
            Some(t) => Err(ParseError::new(format!("unexpected token {t}"))),
            None => Err(ParseError::new("empty query")),
        }
    }

    /// `inner CMP number` threshold filter.
    fn maybe_filter(&mut self, inner: MetricQuery) -> Result<MetricQuery, ParseError> {
        let op = match self.peek() {
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::EqEq) => CmpOp::Eq,
            Some(Token::Neq) => CmpOp::Neq,
            _ => return Ok(inner),
        };
        self.bump();
        let scalar = match self.bump() {
            Some(Token::Number(n)) => n,
            Some(t) => {
                return Err(ParseError::new(format!("expected number after {op}, found {t}")))
            }
            None => return Err(ParseError::new("expected number after comparison")),
        };
        Ok(MetricQuery::Filter { inner: Box::new(inner), op, scalar })
    }

    fn metric_query(&mut self) -> Result<MetricQuery, ParseError> {
        let name = self.ident()?;
        if let Some(op) = RangeAggOp::from_name(&name) {
            return self.range_agg(op);
        }
        let vop = match name.as_str() {
            "sum" => VectorAggOp::Sum,
            "min" => VectorAggOp::Min,
            "max" => VectorAggOp::Max,
            "avg" => VectorAggOp::Avg,
            "count" => VectorAggOp::Count,
            "topk" | "bottomk" => {
                // topk(k, inner)
                self.expect(&Token::LParen)?;
                let k = match self.bump() {
                    Some(Token::Number(n)) if n >= 1.0 => n as usize,
                    _ => return Err(ParseError::new(format!("{name} needs a positive k"))),
                };
                self.expect(&Token::Comma)?;
                let inner = self.metric_query()?;
                self.expect(&Token::RParen)?;
                let op =
                    if name == "topk" { VectorAggOp::Topk(k) } else { VectorAggOp::Bottomk(k) };
                let grouping = self.maybe_grouping()?;
                return Ok(MetricQuery::VectorAgg { op, grouping, inner: Box::new(inner) });
            }
            other => return Err(ParseError::new(format!("unknown function {other:?}"))),
        };
        // Prometheus allows grouping before or after the parens.
        let grouping_before = self.maybe_grouping()?;
        self.expect(&Token::LParen)?;
        let inner = self.metric_query()?;
        self.expect(&Token::RParen)?;
        let grouping_after = self.maybe_grouping()?;
        if grouping_before.is_some() && grouping_after.is_some() {
            return Err(ParseError::new("duplicate grouping clause"));
        }
        Ok(MetricQuery::VectorAgg {
            op: vop,
            grouping: grouping_before.or(grouping_after),
            inner: Box::new(inner),
        })
    }

    fn maybe_grouping(&mut self) -> Result<Option<Grouping>, ParseError> {
        let kind = match self.peek() {
            Some(Token::Ident(s)) if s == "by" => GroupKind::By,
            Some(Token::Ident(s)) if s == "without" => GroupKind::Without,
            _ => return Ok(None),
        };
        self.bump();
        self.expect(&Token::LParen)?;
        let mut labels = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(l)) => labels.push(l),
                Some(Token::RParen) if labels.is_empty() => break,
                Some(t) => return Err(ParseError::new(format!("expected label name, found {t}"))),
                None => return Err(ParseError::new("unterminated grouping clause")),
            }
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                Some(t) => return Err(ParseError::new(format!("expected , or ), found {t}"))),
                None => return Err(ParseError::new("unterminated grouping clause")),
            }
        }
        Ok(Some(Grouping { kind, labels }))
    }

    fn range_agg(&mut self, op: RangeAggOp) -> Result<MetricQuery, ParseError> {
        self.expect(&Token::LParen)?;
        let query = self.log_query()?;
        // The range can follow the selector or the full pipeline:
        // `count_over_time({a="b"} |= "x" [5m])`.
        self.expect(&Token::LBracket)?;
        let range_ns = match self.bump() {
            Some(Token::Duration(ns)) => ns,
            Some(t) => return Err(ParseError::new(format!("expected duration, found {t}"))),
            None => return Err(ParseError::new("expected duration")),
        };
        self.expect(&Token::RBracket)?;
        self.expect(&Token::RParen)?;
        if op.needs_unwrap() && !query.stages.iter().any(|s| matches!(s, Stage::Unwrap(_))) {
            return Err(ParseError::new(format!("{op:?} requires an | unwrap stage")));
        }
        Ok(MetricQuery::RangeAgg { op, query, range_ns })
    }

    fn log_query(&mut self) -> Result<LogQuery, ParseError> {
        let selector = self.selector()?;
        let mut stages = Vec::new();
        loop {
            match self.peek() {
                Some(Token::PipeExact) => {
                    self.bump();
                    stages.push(Stage::LineContains(self.string()?));
                }
                Some(Token::Neq) => {
                    self.bump();
                    stages.push(Stage::LineNotContains(self.string()?));
                }
                Some(Token::PipeRegex) => {
                    self.bump();
                    stages.push(Stage::LineRegex(self.regex()?));
                }
                Some(Token::NotRegex) => {
                    self.bump();
                    stages.push(Stage::LineNotRegex(self.regex()?));
                }
                Some(Token::Pipe) => {
                    self.bump();
                    stages.push(self.pipe_stage()?);
                }
                _ => break,
            }
        }
        Ok(LogQuery { selector, stages })
    }

    fn regex(&mut self) -> Result<Arc<Regex>, ParseError> {
        let src = self.string()?;
        Regex::new(&src)
            .map(Arc::new)
            .map_err(|e| ParseError::new(format!("invalid regex {src:?}: {e}")))
    }

    fn pipe_stage(&mut self) -> Result<Stage, ParseError> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "json" => Stage::Json,
            "logfmt" => Stage::Logfmt,
            "pattern" => {
                let src = self.string()?;
                Stage::Pattern(
                    PatternExpr::compile(&src).map_err(|e| ParseError::new(e.to_string()))?,
                )
            }
            "regexp" => Stage::Regexp(self.regex()?),
            "line_format" => Stage::LineFormat(self.string()?),
            "label_format" => {
                let dst = self.ident()?;
                self.expect(&Token::Eq)?;
                match self.bump() {
                    Some(Token::Ident(src)) => {
                        Stage::LabelFormat { dst, src: LabelFormatSrc::Rename(src) }
                    }
                    Some(Token::Str(t)) => {
                        Stage::LabelFormat { dst, src: LabelFormatSrc::Template(t) }
                    }
                    other => {
                        return Err(ParseError::new(format!(
                            "label_format expects label or template, found {other:?}"
                        )))
                    }
                }
            }
            "unwrap" => Stage::Unwrap(self.ident()?),
            // Anything else is a label filter: `| severity = "critical"`,
            // `| dur > 10`.
            label => {
                let label = label.to_string();
                match self.bump() {
                    Some(Token::Eq) => match self.bump() {
                        Some(Token::Str(v)) => {
                            Stage::LabelCmpString { label, negated: false, value: v }
                        }
                        Some(Token::Number(n)) => {
                            Stage::LabelCmpNumeric { label, op: CmpOp::Eq, value: n }
                        }
                        other => {
                            return Err(ParseError::new(format!(
                                "label filter expects value, found {other:?}"
                            )))
                        }
                    },
                    Some(Token::Neq) => match self.bump() {
                        Some(Token::Str(v)) => {
                            Stage::LabelCmpString { label, negated: true, value: v }
                        }
                        Some(Token::Number(n)) => {
                            Stage::LabelCmpNumeric { label, op: CmpOp::Neq, value: n }
                        }
                        other => {
                            return Err(ParseError::new(format!(
                                "label filter expects value, found {other:?}"
                            )))
                        }
                    },
                    Some(Token::ReMatch) => {
                        Stage::LabelCmpRegex { label, negated: false, regex: self.regex()? }
                    }
                    Some(Token::NotRegex) => {
                        Stage::LabelCmpRegex { label, negated: true, regex: self.regex()? }
                    }
                    Some(tok @ (Token::Gt | Token::Ge | Token::Lt | Token::Le | Token::EqEq)) => {
                        let op = match tok {
                            Token::Gt => CmpOp::Gt,
                            Token::Ge => CmpOp::Ge,
                            Token::Lt => CmpOp::Lt,
                            Token::Le => CmpOp::Le,
                            _ => CmpOp::Eq,
                        };
                        let value = match self.bump() {
                            Some(Token::Number(n)) => n,
                            Some(Token::Duration(ns)) => ns as f64 / 1e9,
                            other => {
                                return Err(ParseError::new(format!(
                                    "numeric label filter expects number, found {other:?}"
                                )))
                            }
                        };
                        Stage::LabelCmpNumeric { label, op, value }
                    }
                    other => {
                        return Err(ParseError::new(format!(
                            "unknown pipeline stage {label:?} (followed by {other:?})"
                        )))
                    }
                }
            }
        })
    }

    fn selector(&mut self) -> Result<Selector, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut matchers = Vec::new();
        if self.peek() == Some(&Token::RBrace) {
            self.bump();
            return Ok(Selector::new(matchers));
        }
        loop {
            let name = self.ident()?;
            let op = match self.bump() {
                Some(Token::Eq) => MatchOp::Eq,
                Some(Token::Neq) => MatchOp::Neq,
                Some(Token::ReMatch) => MatchOp::Re,
                Some(Token::NotRegex) => MatchOp::NotRe,
                other => {
                    return Err(ParseError::new(format!(
                        "expected matcher operator, found {other:?}"
                    )))
                }
            };
            let value = self.string()?;
            matchers.push(Matcher::new(&name, op, &value).map_err(ParseError::new)?);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RBrace) => break,
                other => return Err(ParseError::new(format!("expected , or }}, found {other:?}"))),
            }
        }
        Ok(Selector::new(matchers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_selector() {
        let sel = parse_selector(r#"{app="fm", cluster!="cori"}"#).unwrap();
        assert_eq!(sel.matchers.len(), 2);
        assert_eq!(sel.matchers[0].op, MatchOp::Eq);
        assert_eq!(sel.matchers[1].op, MatchOp::Neq);
    }

    #[test]
    fn empty_selector() {
        let sel = parse_selector("{}").unwrap();
        assert!(sel.matchers.is_empty());
    }

    #[test]
    fn log_query_with_stages() {
        let q = parse_log_query(
            r#"{app="fm"} |= "offline" != "test" |~ "x\d+" | json | severity = "critical""#,
        )
        .unwrap();
        assert_eq!(q.stages.len(), 5);
        assert!(matches!(q.stages[0], Stage::LineContains(_)));
        assert!(matches!(q.stages[1], Stage::LineNotContains(_)));
        assert!(matches!(q.stages[2], Stage::LineRegex(_)));
        assert!(matches!(q.stages[3], Stage::Json));
        assert!(matches!(q.stages[4], Stage::LabelCmpString { .. }));
    }

    #[test]
    fn paper_figure5_query_structure() {
        let e = parse_expr(
            r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, context, message_id, message)"#,
        )
        .unwrap();
        let Expr::Metric(MetricQuery::VectorAgg { op, grouping, inner }) = e else {
            panic!("expected vector agg")
        };
        assert_eq!(op, VectorAggOp::Sum);
        let g = grouping.unwrap();
        assert_eq!(g.kind, GroupKind::By);
        assert_eq!(g.labels, vec!["severity", "cluster", "context", "message_id", "message"]);
        let MetricQuery::RangeAgg { op, query, range_ns } = *inner else {
            panic!("expected range agg")
        };
        assert_eq!(op, RangeAggOp::CountOverTime);
        assert_eq!(range_ns, 3600 * 1_000_000_000);
        assert_eq!(query.stages.len(), 2);
    }

    #[test]
    fn grouping_before_parens() {
        let e = parse_expr(r#"sum by (a) (rate({x="y"}[1m]))"#).unwrap();
        let Expr::Metric(MetricQuery::VectorAgg { grouping, .. }) = e else { panic!() };
        assert_eq!(grouping.unwrap().labels, vec!["a"]);
    }

    #[test]
    fn threshold_filter() {
        let e = parse_expr(r#"sum(count_over_time({a="b"}[5m])) > 0"#).unwrap();
        let Expr::Metric(MetricQuery::Filter { op, scalar, .. }) = e else { panic!() };
        assert_eq!(op, CmpOp::Gt);
        assert_eq!(scalar, 0.0);
    }

    #[test]
    fn unwrap_required_for_value_aggs() {
        assert!(parse_expr(r#"sum_over_time({a="b"}[5m])"#).is_err());
        assert!(parse_expr(r#"sum_over_time({a="b"} | json | unwrap dur [5m])"#).is_ok());
    }

    #[test]
    fn pattern_stage_parses() {
        let q = parse_log_query(
            r#"{app="fm"} | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>""#,
        )
        .unwrap();
        let Stage::Pattern(p) = &q.stages[0] else { panic!() };
        assert_eq!(p.capture_names(), vec!["severity", "problem", "xname", "state"]);
    }

    #[test]
    fn label_format_and_line_format() {
        let q = parse_log_query(
            r#"{a="b"} | label_format loc=context | line_format "{{.severity}}: {{.message}}""#,
        )
        .unwrap();
        assert!(matches!(&q.stages[0], Stage::LabelFormat { dst, .. } if dst == "loc"));
        assert!(matches!(&q.stages[1], Stage::LineFormat(_)));
    }

    #[test]
    fn numeric_label_filters() {
        let q = parse_log_query(r#"{a="b"} | json | dur > 1.5 | code == 200"#).unwrap();
        assert!(
            matches!(&q.stages[1], Stage::LabelCmpNumeric { op: CmpOp::Gt, value, .. } if *value == 1.5)
        );
        assert!(matches!(&q.stages[2], Stage::LabelCmpNumeric { op: CmpOp::Eq, .. }));
    }

    #[test]
    fn duration_label_filter_converts_to_seconds() {
        let q = parse_log_query(r#"{a="b"} | json | latency > 10s"#).unwrap();
        assert!(matches!(&q.stages[1], Stage::LabelCmpNumeric { value, .. } if *value == 10.0));
    }

    #[test]
    fn topk() {
        let e = parse_expr(r#"topk(3, count_over_time({a="b"}[1m])) by (host)"#).unwrap();
        let Expr::Metric(MetricQuery::VectorAgg { op: VectorAggOp::Topk(3), .. }) = e else {
            panic!()
        };
    }

    #[test]
    fn rejects_malformed() {
        for q in [
            "",
            "{",
            r#"{a=}"#,
            r#"{a="b"} |="#,
            r#"frobnicate({a="b"}[5m])"#,
            r#"sum({a="b"})"#,             // vector agg over a log query
            r#"count_over_time({a="b"})"#, // missing range
            r#"sum by (a) by (b) (rate({x="y"}[1m]))"#,
            r#"{a="b"} trailing"#,
            r#"sum(count_over_time({a="b"}[5m])) > "zero""#,
        ] {
            assert!(parse_expr(q).is_err(), "should reject {q:?}");
        }
    }

    #[test]
    fn duplicate_grouping_rejected() {
        assert!(parse_expr(r#"sum by (a) (rate({x="y"}[1m])) by (b)"#).is_err());
    }
}

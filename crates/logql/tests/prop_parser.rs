//! Property tests for the LogQL front end.

use omni_logql::{parse_expr, parse_log_query, Pipeline};
use omni_model::LabelSet;
use proptest::prelude::*;

proptest! {
    #[test]
    fn parser_never_panics(q in "\\PC{0,120}") {
        let _ = parse_expr(&q);
    }

    #[test]
    fn parser_never_panics_querylike(
        q in "[{}()\\[\\]|=~!<>a-z0-9\", .]{0,80}"
    ) {
        let _ = parse_expr(&q);
    }

    #[test]
    fn valid_selectors_always_parse(
        names in prop::collection::vec("[a-z_][a-z0-9_]{0,8}", 1..4),
        values in prop::collection::vec("[a-zA-Z0-9 _.-]{0,12}", 1..4),
    ) {
        let n = names.len().min(values.len());
        let matchers: Vec<String> = (0..n)
            .map(|i| format!("{}=\"{}\"", names[i], values[i]))
            .collect();
        let q = format!("{{{}}}", matchers.join(", "));
        let parsed = parse_log_query(&q);
        prop_assert!(parsed.is_ok(), "query {q} failed: {:?}", parsed.err());
    }

    #[test]
    fn line_contains_filter_agrees_with_str_contains(
        needle in "[a-z]{1,6}",
        line in "[a-z ]{0,40}",
    ) {
        let q = format!(r#"{{app="x"}} |= "{needle}""#);
        let pipeline = Pipeline::new(parse_log_query(&q).unwrap().stages);
        let labels = LabelSet::from_pairs([("app", "x")]);
        let kept = pipeline.process(&line, &labels).is_some();
        prop_assert_eq!(kept, line.contains(&needle));
    }

    #[test]
    fn pipeline_never_panics_on_arbitrary_lines(
        line in "\\PC{0,200}",
    ) {
        // A busy pipeline with every parser stage in it.
        let q = r#"{a="b"} | json | logfmt | regexp "x(?P<n>\d+)" | line_format "{{.n}}""#;
        let pipeline = Pipeline::new(parse_log_query(q).unwrap().stages);
        let labels = LabelSet::from_pairs([("a", "b")]);
        let _ = pipeline.process(&line, &labels);
    }

    #[test]
    fn count_over_time_durations_parse(mins in 1u32..10_000) {
        let q = format!(r#"count_over_time({{a="b"}}[{mins}m])"#);
        prop_assert!(parse_expr(&q).is_ok());
    }
}

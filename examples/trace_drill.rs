//! Trace drill: follow one Redfish event — the paper's cabinet leak —
//! through every stage of the pipeline and print its span timeline.
//!
//! ```sh
//! cargo run --example trace_drill
//! ```
//!
//! The trace id is derived from the stack seed, the span times from the
//! virtual clock, so two runs print byte-identical timelines.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::LeakZone;

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    println!("Trace drill: one cabinet leak, collector to ServiceNow\n");

    let mut stack = MonitoringStack::new(StackConfig::default());
    // Two quiet minutes of background traffic, then the leak.
    for _ in 0..2 {
        stack.step(minute, 5, 3);
    }
    let chassis = stack.machine.topology().chassis()[1];
    let event = stack.inject_leak(chassis, 'A', LeakZone::Front);
    println!("leak injected at {} ({})\n", event.context, event.message_id);
    for _ in 0..6 {
        stack.step(minute, 5, 3);
    }

    let trace_id = stack
        .traces()
        .lookup(&event.context.to_string())
        .expect("the injected leak must carry a trace");
    print!("{}", stack.traces().render_timeline(trace_id));

    // Every stage of Figure 1 must appear in the journey.
    let timeline = stack.traces().render_timeline(trace_id);
    for stage in [
        "collect",
        "kafka",
        "loki_ingest",
        "alert_rule",
        "alertmanager",
        "deliver_slack",
        "deliver_servicenow",
        "servicenow_incident",
    ] {
        assert!(timeline.contains(stage), "stage {stage} missing:\n{timeline}");
    }
}

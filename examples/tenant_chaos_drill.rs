//! Multi-tenant noisy-neighbor chaos drill: 1200 tenants with
//! Zipf-distributed traffic share one Loki cluster while a noisy head
//! tenant fires ingest bursts, floods the query frontend, and shards
//! crash mid-run. The drill then proves the isolation invariants:
//!
//! 1. admission is per-tenant — the noisy tenant's bursts are shed with
//!    typed `tenant_rejected` errors while every other tenant's ingest
//!    and queries see zero rejections;
//! 2. the admission ledger balances — `offered == accepted + rejected`
//!    for ingest and queries, for every tenant;
//! 3. queries are structurally isolated — each tenant reads back exactly
//!    what it wrote, never a neighbor's records, across shard crashes
//!    and WAL replays;
//! 4. fair scheduling bounds queue waits — a well-behaved tenant's
//!    splits wait O(pool) grant rounds behind a hundreds-deep noisy
//!    backlog, never O(backlog);
//! 5. per-tenant retention never leaks — a short-retention tenant's
//!    expiry deletes nothing from its neighbors;
//! 6. the self-telemetry ledger agrees with the cluster's own counters.
//!
//! ```sh
//! cargo run --release --example tenant_chaos_drill
//! ```
//!
//! Everything runs on the virtual clock from a fixed seed, so the
//! admission arithmetic is byte-identical between runs (scheduler waits
//! depend on thread interleaving and are asserted as bounds).

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::loki::{IngestError, Limits, LokiCluster, QueryError, TenantLimits};
use shasta_mon::model::{LabelSet, SimClock, TenantId, NANOS_PER_SEC};
use std::collections::HashMap;

const SEED: u64 = 42;
const N_TENANTS: usize = 1200;
const SHARDS: usize = 4;
const STEPS: i64 = 120;
const PUSHES_PER_STEP: usize = 300;
const BURST_SIZE: usize = 2000;

/// xorshift64: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(1.0) sampler over ranks 0..n via the cumulative distribution.
struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / (rank + 1) as f64;
            cum.push(total);
        }
        Self { cum }
    }
    fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cum.last().unwrap_or(&1.0);
        let u = rng.unit() * total;
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

fn tenant(rank: usize) -> TenantId {
    TenantId::new(format!("t{rank:04}"))
}

fn main() {
    println!("Tenant chaos drill: {N_TENANTS} Zipf tenants, {STEPS} simulated seconds\n");
    println!("  rank 0  noisy: 50 rec/s ingest cap, 2 q/s query cap, bursts at t+30s/t+70s");
    println!("  ranks 100..110  short 30s retention override");
    println!("  t+40s  shard 1 crashes (recovers t+45s); t+80s shard 2 crash + replay\n");

    let clock = SimClock::starting_at(0);
    let limits = Limits {
        split_interval_ns: NANOS_PER_SEC, // 1s splits: wide queries fan out
        chunk_target_bytes: 4096,
        ..Limits::default()
    };
    let c = LokiCluster::new(SHARDS, limits, clock.clone());

    let noisy = tenant(0);
    c.tenants().set_override(
        &noisy,
        TenantLimits {
            ingest_rate_per_sec: 50,
            ingest_burst: 100,
            query_rate_per_sec: 2,
            query_burst: 2,
            ..TenantLimits::default()
        },
    );
    // Mid tenants are metered but generously: their Zipf share stays
    // under the cap, so any rejection here is an isolation leak.
    for rank in 1..50 {
        c.tenants().set_override(
            &tenant(rank),
            TenantLimits {
                ingest_rate_per_sec: 500,
                ingest_burst: 1000,
                ..TenantLimits::default()
            },
        );
    }
    for rank in 100..110 {
        c.tenants().set_override(
            &tenant(rank),
            TenantLimits { retention_ns: 30 * NANOS_PER_SEC, ..TenantLimits::default() },
        );
    }

    let mut rng = Rng::new(SEED);
    let zipf = Zipf::new(N_TENANTS);
    let labels = |rank: usize| LabelSet::from_pairs([("app", "drill"), ("host", HOSTS[rank % 8])]);
    const HOSTS: [&str; 8] = ["h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"];

    // Local shadow ledger: what we offered and what the cluster said.
    let mut offered: HashMap<usize, u64> = HashMap::new();
    let mut accepted: HashMap<usize, u64> = HashMap::new();
    let mut ts = 0i64;
    let mut push = |c: &LokiCluster, rank: usize| {
        *offered.entry(rank).or_default() += 1;
        ts += 1;
        match c.push_as(&tenant(rank), labels(rank), ts, format!("line {ts}")) {
            Ok(()) => *accepted.entry(rank).or_default() += 1,
            Err(IngestError::TenantRejected(r)) => {
                assert_eq!(r.tenant, tenant(0), "only the noisy tenant may ever be shed: {r}");
            }
            Err(e) => panic!("non-tenant ingest error: {e}"),
        }
    };

    // Warm-up: every tenant exists before the storm.
    for rank in 0..N_TENANTS {
        push(&c, rank);
    }

    let mut noisy_query_rejections = 0u64;
    for step in 0..STEPS {
        clock.advance(NANOS_PER_SEC);
        for _ in 0..PUSHES_PER_STEP {
            let rank = zipf.sample(&mut rng);
            push(&c, rank);
        }
        if step == 30 || step == 70 {
            for _ in 0..BURST_SIZE {
                push(&c, 0);
            }
        }
        if step == 40 {
            c.crash_shard(1);
        }
        if step == 45 {
            c.recover_shard(1);
            assert_eq!(c.recover_shard(1), 0, "second recovery must be a no-op");
        }
        if step == 80 {
            c.crash_shard(2);
            c.recover_shard(2);
            assert_eq!(c.recover_shard(2), 0, "repeat replay must not duplicate");
        }
        if step % 10 == 9 {
            // A calm tenant's query must always land; the noisy tenant
            // over its query budget is shed with a typed error. Narrow
            // ranges (one split) keep these out of the fairness numbers.
            let now = clock.now();
            c.query_logs_as(&tenant(5), r#"{app="drill"}"#, now - NANOS_PER_SEC, now, 100)
                .expect("calm tenant query rejected");
            for _ in 0..5 {
                match c.query_logs_as(&noisy, r#"{app="drill"}"#, now - NANOS_PER_SEC, now, 100) {
                    Ok(_) => {}
                    Err(QueryError::TenantRejected(_)) => noisy_query_rejections += 1,
                    Err(e) => panic!("non-tenant query error: {e}"),
                }
            }
        }
    }

    // ── Invariant 1+2: per-tenant admission, balanced ledger ──────────
    let snaps = c.tenant_snapshots();
    assert!(snaps.len() >= 1000, "expected >=1000 tenants, saw {}", snaps.len());
    let mut total_accepted = 0u64;
    for s in &snaps {
        assert_eq!(
            s.ingest_offered,
            s.ingest_accepted + s.ingest_rejected,
            "ingest ledger out of balance for {}",
            s.tenant
        );
        assert!(
            s.queries_rejected <= s.queries_offered,
            "query ledger out of balance for {}",
            s.tenant
        );
        if s.tenant != noisy {
            assert_eq!(s.ingest_rejected, 0, "calm tenant {} was shed", s.tenant);
            assert_eq!(s.queries_rejected, 0, "calm tenant {} query shed", s.tenant);
        }
        total_accepted += s.ingest_accepted;
    }
    let noisy_snap = snaps.iter().find(|s| s.tenant == noisy).expect("noisy tenant tracked");
    assert!(noisy_snap.ingest_rejected > 0, "bursts must overflow the noisy bucket");
    assert!(noisy_query_rejections > 0 && noisy_snap.queries_rejected == noisy_query_rejections);

    // ── Invariant 3: structural query isolation, post-crash ───────────
    // A second of refill lets even the noisy tenant afford one query.
    clock.advance(NANOS_PER_SEC);
    let now = clock.now();
    for rank in [0usize, 1, 5, 100, 500] {
        let got = c
            .query_logs_as(&tenant(rank), r#"{app="drill"}"#, 0, now + 1, usize::MAX)
            .expect("scoped query")
            .len() as u64;
        assert_eq!(
            got,
            accepted.get(&rank).copied().unwrap_or(0),
            "tenant t{rank:04} must read back exactly its accepted records"
        );
    }
    let all = c.query_logs(r#"{app="drill"}"#, 0, now + 1, usize::MAX).expect("admin query");
    assert_eq!(all.len() as u64, total_accepted, "no loss, no duplication across crashes");

    // ── Invariant 4: fair scheduling under a query flood ──────────────
    // Hot-reload lifts the noisy query cap (ledger survives), then the
    // noisy tenant floods the frontend with wide fan-outs while a calm
    // tenant runs one narrow query.
    c.tenants().set_override(
        &noisy,
        TenantLimits { ingest_rate_per_sec: 50, ingest_burst: 100, ..TenantLimits::default() },
    );
    // The fairness probe uses a tenant that has never queried, so its
    // peak wait reflects only this phase.
    let calm = tenant(7);
    let grants_before = c.frontend().scheduler_stats().grants;
    std::thread::scope(|scope| {
        for i in 0..6 {
            let (c, noisy) = (&c, noisy.clone());
            scope.spawn(move || {
                let q = format!(r#"count_over_time({{app="drill"}} |= "{i}" [1s])"#);
                c.query_range_as(&noisy, &q, 0, 48 * NANOS_PER_SEC, NANOS_PER_SEC)
                    .expect("noisy range query");
            });
        }
        // Let the flood start draining, then run the calm query.
        while c.frontend().scheduler_stats().grants < grants_before + 8 {
            std::thread::yield_now();
        }
        let probe = r#"count_over_time({app="drill"} |= "7" [1s])"#;
        c.query_range_as(&calm, probe, 0, 8 * NANOS_PER_SEC, NANOS_PER_SEC)
            .expect("calm range query");
    });
    let calm_wait = c.frontend().max_wait_rounds(&calm);
    let noisy_wait = c.frontend().max_wait_rounds(&noisy);
    assert!(calm_wait <= 32, "calm tenant waited {calm_wait} grant rounds behind the flood");
    assert!(noisy_wait >= 100, "noisy backlog should mostly queue on itself ({noisy_wait})");

    // ── Invariant 5: per-tenant retention never leaks ─────────────────
    let keep_t5 = accepted.get(&5).copied().unwrap_or(0);
    c.flush();
    clock.advance(3600 * NANOS_PER_SEC);
    let (chunks_dropped, streams_dropped) = c.enforce_retention();
    assert!(streams_dropped >= 10, "short-retention tenants should age out");
    let now = clock.now();
    for rank in 100..110 {
        let left = c
            .query_logs_as(&tenant(rank), r#"{app="drill"}"#, 0, now, usize::MAX)
            .expect("scoped query")
            .len();
        assert_eq!(left, 0, "t{rank:04} (30s retention) must be empty after 1h");
    }
    let t5_left = c
        .query_logs_as(&tenant(5), r#"{app="drill"}"#, 0, now, usize::MAX)
        .expect("scoped query")
        .len() as u64;
    assert_eq!(t5_left, keep_t5, "default-retention tenant must keep every record");

    // ── Invariant 6: self-telemetry ledger agrees with the cluster ────
    let stack = MonitoringStack::new(StackConfig::default());
    let acme = TenantId::new("acme");
    let beta = TenantId::new("beta");
    stack.omni.loki().tenants().set_override(
        &acme,
        TenantLimits { ingest_rate_per_sec: 5, ingest_burst: 5, ..TenantLimits::default() },
    );
    let base = stack.clock.now();
    for i in 0..20i64 {
        let ls = LabelSet::from_pairs([("app", "billing")]);
        let _ = stack.omni.loki().push_as(&acme, ls.clone(), base + i, format!("acme {i}"));
        stack.omni.loki().push_as(&beta, ls, base + i, format!("beta {i}")).expect("beta");
    }
    let mut scraped: HashMap<(String, String), f64> = HashMap::new();
    for fam in stack.registry().gather() {
        if fam.name.starts_with("omni_tenant_") {
            for s in &fam.samples {
                let t = s.labels.get("tenant").expect("tenant label").to_string();
                scraped.insert((fam.name.clone(), t), s.value);
            }
        }
    }
    let v = |name: &str, t: &str| {
        scraped.get(&(name.to_string(), t.to_string())).copied().unwrap_or_else(|| {
            panic!("self-telemetry missing {name}{{tenant={t}}}");
        })
    };
    for t in ["acme", "beta"] {
        let (o, a, r) = (
            v("omni_tenant_ingest_offered_total", t),
            v("omni_tenant_ingest_accepted_total", t),
            v("omni_tenant_ingest_rejected_total", t),
        );
        assert_eq!(o, a + r, "scraped ledger out of balance for {t}");
        assert_eq!(o, 20.0, "each tenant offered 20 records");
    }
    assert_eq!(v("omni_tenant_ingest_rejected_total", "beta"), 0.0);
    assert!(v("omni_tenant_ingest_rejected_total", "acme") >= 10.0, "acme burst must shed");

    // ── Report ────────────────────────────────────────────────────────
    println!("tenants tracked .............. {}", snaps.len());
    println!("records offered .............. {}", offered.values().sum::<u64>());
    println!("records accepted ............. {total_accepted}");
    println!("noisy ingest shed ............ {}", noisy_snap.ingest_rejected);
    println!("noisy queries shed ........... {}", noisy_snap.queries_rejected);
    println!("calm peak queue wait ......... {calm_wait} grant rounds");
    println!("noisy peak queue wait ........ {noisy_wait} grant rounds");
    println!("retention: chunks dropped .... {chunks_dropped}");
    println!("retention: streams retired ... {streams_dropped}");
    println!("\ntenant chaos drill: all isolation invariants hold");
}

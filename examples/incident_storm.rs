//! Incident storm: many simultaneous faults — the noise-reduction story.
//!
//! The paper's motivation: "the reduction in noise caused by multiple
//! alerts from the same events ... the correlation of all events to
//! accelerate actionable alerts and incidents with minimal response
//! time." This example breaks several switches and leaks two cabinets at
//! once, then shows how grouping (Alertmanager) and deduplication
//! (ServiceNow) compress the flood.
//!
//! ```sh
//! cargo run --example incident_storm
//! ```

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::{LeakZone, SwitchState};

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    // A mid-size machine: 4 cabinets, 4 chassis each.
    let config = StackConfig {
        topology: shasta_mon::xname::TopologySpec {
            cabinets: vec![1000, 1001, 1100, 1101],
            chassis_per_cabinet: 4,
            slots_per_chassis: 4,
            bmcs_per_slot: 1,
            nodes_per_bmc: 2,
            routers_per_chassis: 2,
            cabinets_per_cdu: 2,
        },
        ..Default::default()
    };
    let mut stack = MonitoringStack::new(config);
    for _ in 0..5 {
        stack.step(minute, 10, 5);
    }

    // The storm: 6 switches lose contact, 2 chassis leak, within one poll.
    let topo = stack.machine.topology().clone();
    for sw in topo.switches().iter().take(6) {
        stack.take_switch_offline(*sw, SwitchState::Offline);
    }
    stack.inject_leak(topo.chassis()[0], 'A', LeakZone::Front);
    stack.inject_leak(topo.chassis()[5], 'B', LeakZone::Rear);
    println!("injected: 6 switch failures + 2 cabinet leaks\n");

    for _ in 0..8 {
        stack.step(minute, 10, 5);
    }

    let (received, notified, suppressed) = stack.alertmanager_stats();
    println!("alertmanager: {received} alerts received");
    println!("              {notified} grouped notifications sent");
    println!("              {suppressed} suppressed (silence/inhibition)");
    println!(
        "noise reduction: {:.1}x fewer notifications than raw alerts\n",
        received as f64 / notified.max(1) as f64
    );

    println!("slack messages ({}):", stack.slack.len());
    for msg in stack.slack.messages().iter().take(3) {
        let first_line = msg.text.lines().next().unwrap_or("");
        let alert_count = msg.text.matches("FIRING").count() + msg.text.matches("RESOLVED").count();
        println!("  {first_line}  (+{} alerts in this group)", alert_count.saturating_sub(1));
    }

    println!("\nservicenow state:");
    println!("  events received : {}", stack.servicenow.events_received());
    println!("  deduplicated alerts: {}", stack.servicenow.alerts().len());
    println!("  incidents opened : {}", stack.servicenow.incidents().len());
    for inc in stack.servicenow.incidents() {
        println!(
            "    {} p{} [{}] {}",
            inc.number, inc.priority, inc.assignment_group, inc.short_description
        );
    }

    // Remediate everything; watch incidents resolve and MTTR appear.
    for sw in topo.switches().iter().take(6) {
        stack.take_switch_offline(*sw, SwitchState::Online);
    }
    stack.machine.clear_leak(topo.chassis()[0], 'A', LeakZone::Front);
    stack.machine.clear_leak(topo.chassis()[5], 'B', LeakZone::Rear);
    let resolve_time = stack.clock.now() + 2 * minute;
    let incidents = stack.servicenow.incidents();
    for inc in &incidents {
        stack.servicenow.resolve_incident(&inc.number, resolve_time);
    }
    for _ in 0..10 {
        stack.step(minute, 10, 5);
    }
    if let Some(mttr) = stack.servicenow.mttr_ns() {
        println!(
            "\nMTTR across {} incidents: {:.1} minutes",
            incidents.len(),
            mttr as f64 / minute as f64
        );
    }
    let resolved_msgs =
        stack.slack.messages().iter().filter(|m| m.text.contains("RESOLVED")).count();
    println!("slack RESOLVED notifications: {resolved_msgs}");
}

//! Case study A (§IV-A): leak detection and alerting, end to end —
//! Figures 2, 3, 4, 5 and 6 of the paper, regenerated live.
//!
//! ```sh
//! cargo run --example leak_detection
//! ```

use shasta_mon::core::{redfish_to_loki, MonitoringStack, StackConfig};
use shasta_mon::model::{format_iso8601, NANOS_PER_SEC};
use shasta_mon::redfish::RedfishEvent;
use shasta_mon::shasta::LeakZone;

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    let mut stack = MonitoringStack::new(StackConfig::default());

    // ── Figure 2: the raw Telemetry-API payload ────────────────────────
    let paper_event = RedfishEvent::paper_leak_event();
    println!("── Figure 2: raw data pulled from the Telemetry API ──");
    println!("{}\n", paper_event.to_telemetry_json().pretty(2));

    // ── Figure 3: the cleaned Loki push payload ────────────────────────
    let record = redfish_to_loki(&paper_event, "perlmutter");
    println!("── Figure 3: the log data input to Loki ──");
    println!("labels: {}", record.labels);
    println!("values: [[\"{}\", '{}']]\n", record.entry.ts, record.entry.line);

    // ── Live scenario: run an hour, then the leak happens ──────────────
    for _ in 0..60 {
        stack.step(minute, 5, 3);
    }
    let chassis = stack.machine.topology().chassis()[3];
    let event = stack.inject_leak(chassis, 'A', LeakZone::Front);
    let leak_time = event.timestamp;
    println!("injected leak at chassis {chassis} at {}\n", format_iso8601(leak_time));

    // Run the pipeline: hold (`for: 1m`), group_wait, dispatch.
    for _ in 0..6 {
        stack.step(minute, 5, 3);
    }

    // ── Figure 4: the event queried back from Loki (Grafana panel) ─────
    println!("── Figure 4: Redfish event visualization (log panel) ──");
    let logs = stack
        .pane
        .logs(r#"{data_type="redfish_event"} |= "CabinetLeakDetected""#, 0, stack.clock.now(), 10)
        .expect("query parses");
    for r in &logs {
        println!("  {}  {}", format_iso8601(r.entry.ts), r.entry.line);
    }

    // ── Figure 5: the LogQL count_over_time graph ───────────────────────
    println!("\n── Figure 5: LogQL metric (count_over_time 60m window) ──");
    let query = r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId, Message)"#;
    println!("query: {query}");
    let matrix = stack
        .pane
        .log_metric_range(query, leak_time - 30 * minute, stack.clock.now(), 5 * minute)
        .expect("query parses");
    for (labels, samples) in &matrix {
        println!("  series: Context={}", labels.get("Context").unwrap_or("?"));
        for s in samples {
            println!("    {}  value={}", format_iso8601(s.ts), s.value);
        }
    }

    // ── Figure 6: the Slack alert ───────────────────────────────────────
    println!("\n── Figure 6: Slack alert generated from the Redfish leak event ──");
    for msg in stack.slack.messages() {
        println!("[{}]\n{}", msg.channel, msg.text);
    }

    // ── And the paper's ServiceNow leg ─────────────────────────────────
    println!("── ServiceNow: events → alerts → incidents ──");
    for alert in stack.servicenow.alerts() {
        println!(
            "  {}  sev={} events={} node={} state={:?}",
            alert.number, alert.severity, alert.event_count, alert.node, alert.state
        );
    }
    for inc in stack.servicenow.incidents() {
        println!(
            "  {}  p{} [{}] {}",
            inc.number, inc.priority, inc.assignment_group, inc.short_description
        );
    }
}

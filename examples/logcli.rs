//! LogCLI — "The queries can be executed and visualized using Grafana or
//! a command line interface, LogCLI" (§III-A).
//!
//! A self-contained command-line query tool: boots a monitoring stack,
//! replays twenty minutes of traffic plus both case-study faults, then
//! runs your LogQL query against the store.
//!
//! ```sh
//! cargo run --example logcli -- '{app="fabric_manager_monitor"} |= "fm_switch_offline"'
//! cargo run --example logcli -- 'sum(count_over_time({data_type="syslog"}[10m])) by (hostname)'
//! cargo run --example logcli -- --labels data_type
//! ```

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::logql::instant_vector_to_string;
use shasta_mon::model::{format_iso8601, NANOS_PER_SEC};
use shasta_mon::shasta::{LeakZone, SwitchState};

const MINUTE: i64 = 60 * NANOS_PER_SEC;

fn usage() -> ! {
    eprintln!("usage: logcli <logql-query>");
    eprintln!("       logcli --labels <label-name>");
    eprintln!();
    eprintln!("examples:");
    eprintln!(r#"  logcli '{{data_type="redfish_event"}} |= "CabinetLeakDetected""#);
    eprintln!(r#"  logcli 'sum(count_over_time({{data_type="syslog"}}[10m])) by (hostname)'"#);
    eprintln!("  logcli --labels data_type");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    // Boot and populate a demo store.
    eprintln!("(booting demo stack: 20 simulated minutes + both case-study faults)");
    let mut stack = MonitoringStack::new(StackConfig::default());
    for _ in 0..10 {
        stack.step(MINUTE, 20, 10);
    }
    let chassis = stack.machine.topology().chassis()[0];
    stack.inject_leak(chassis, 'A', LeakZone::Front);
    let switch = stack.machine.topology().switches()[0];
    stack.take_switch_offline(switch, SwitchState::Unknown);
    for _ in 0..10 {
        stack.step(MINUTE, 20, 10);
    }
    let now = stack.clock.now();

    if args[0] == "--labels" {
        let Some(name) = args.get(1) else { usage() };
        for v in stack.omni.loki().label_values(name) {
            println!("{v}");
        }
        return;
    }

    let query = args.join(" ");
    // Log query or metric query? Try logs first, fall back to metrics.
    match stack.omni.loki().query_logs_with_stats(&query, 0, now, 50) {
        Ok((records, stats)) => {
            eprintln!(
                "{} result(s) — scanned {} entries / {} bytes across {} streams",
                records.len(),
                stats.entries_scanned,
                stats.bytes_scanned,
                stats.streams_matched
            );
            for r in records {
                println!("{} {} {}", format_iso8601(r.entry.ts), r.labels, r.entry.line);
            }
        }
        Err(_) => match stack.pane.log_metric_instant(&query, now) {
            Ok(vector) => {
                eprintln!("instant vector at {}:", format_iso8601(now));
                print!("{}", instant_vector_to_string(&vector));
            }
            Err(e) => {
                eprintln!("query error: {e}");
                std::process::exit(1);
            }
        },
    }
}

//! Case study B (§IV-B): switch offline detection and alerting —
//! Figures 7, 8 and 9, regenerated live.
//!
//! ```sh
//! cargo run --example switch_offline
//! ```

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::loki::AlertingRule;
use shasta_mon::model::{format_iso8601, NANOS_PER_SEC};
use shasta_mon::shasta::SwitchState;

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    let mut stack = MonitoringStack::new(StackConfig::default());

    // Warm up.
    for _ in 0..10 {
        stack.step(minute, 5, 3);
    }

    // A Rosetta switch loses contact with the fabric manager.
    let switch = stack.machine.topology().switches()[7];
    let blast_radius = stack.machine.topology().nodes_on_switch(&switch);
    println!(
        "switch {switch} serves {} compute nodes: {:?}\n",
        blast_radius.len(),
        blast_radius.iter().map(|x| x.to_string()).collect::<Vec<_>>()
    );
    stack.take_switch_offline(switch, SwitchState::Unknown);

    // The fabric-manager monitor polls, finds the change, and pushes the
    // event line to Loki; the Ruler fires after the 1-minute hold.
    for _ in 0..6 {
        stack.step(minute, 5, 3);
    }

    // ── Figure 7: the switch event in Grafana ──────────────────────────
    println!("── Figure 7: sample switch event ──");
    let logs = stack
        .pane
        .logs(r#"{app="fabric_manager_monitor"} |= "fm_switch_offline""#, 0, stack.clock.now(), 10)
        .expect("query parses");
    for r in &logs {
        println!("  {}  {}  {}", format_iso8601(r.entry.ts), r.labels, r.entry.line);
    }

    // ── The pattern stage extraction the paper shows ───────────────────
    println!("\n── pattern extraction ──");
    let extracted = stack
        .pane
        .logs(
            r#"{app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>""#,
            0,
            stack.clock.now(),
            10,
        )
        .expect("query parses");
    for r in &extracted {
        println!(
            "  severity={} problem={} xname={} state={}",
            r.labels.get("severity").unwrap_or("?"),
            r.labels.get("problem").unwrap_or("?"),
            r.labels.get("xname").unwrap_or("?"),
            r.labels.get("state").unwrap_or("?"),
        );
    }

    // ── Figure 8: the alerting rule ────────────────────────────────────
    let rule = AlertingRule::paper_switch_rule();
    println!("\n── Figure 8: alerting rule querying offline switch events ──");
    println!("  alert: {}", rule.name);
    println!("  expr: {}", rule.expr);
    println!("  for: 1m");
    println!("  labels: {}", rule.labels);

    // ── Figure 9: the Slack notification ───────────────────────────────
    println!("\n── Figure 9: offline switch Slack notification by AlertManager ──");
    for msg in stack.slack.messages() {
        println!("[{}]\n{}", msg.channel, msg.text);
    }

    // Recovery: bring the switch back; the alert resolves.
    println!("── recovery ──");
    stack.take_switch_offline(switch, SwitchState::Online);
    for _ in 0..10 {
        stack.step(minute, 5, 3);
    }
    let resolved = stack.slack.messages().iter().filter(|m| m.text.contains("RESOLVED")).count();
    println!("resolved notifications posted: {resolved}");
}

//! GPFS health monitoring — the paper's §V future work, implemented:
//! "creating a mechanism for monitoring the health status and performance
//! for the General Parallel File System (GPFS) which is one of
//! Perlmutter's storage components."
//!
//! ```sh
//! cargo run --example gpfs_monitoring
//! ```

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::GpfsState;

const MINUTE: i64 = 60 * NANOS_PER_SEC;

fn main() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    for _ in 0..5 {
        stack.step(MINUTE, 5, 3);
    }

    println!("scratch filesystem servers: {:?}\n", stack.gpfs.servers());

    // A disk dies on nsd05; the server degrades. Later the whole server
    // fails.
    stack.gpfs.fail_disk("nsd05", 3);
    for _ in 0..4 {
        stack.step(MINUTE, 5, 3);
    }
    stack.fail_gpfs_server("nsd05", GpfsState::Failed);
    for _ in 0..6 {
        stack.step(MINUTE, 5, 3);
    }

    println!("── GPFS health events in Loki ──");
    for r in stack.pane.logs(r#"{app="gpfs_monitor"}"#, 0, stack.clock.now(), 20).unwrap() {
        println!("  {}", r.entry.line);
    }

    println!("\n── extracted with the pattern stage ──");
    for r in stack
        .pane
        .logs(
            r#"{app="gpfs_monitor"} | pattern "[<severity>] problem:<problem>, fs:<fs>, server:<server>, state:<state>" | state != "HEALTHY""#,
            0,
            stack.clock.now(),
            20,
        )
        .unwrap()
    {
        println!(
            "  severity={} fs={} server={} state={}",
            r.labels.get("severity").unwrap_or("?"),
            r.labels.get("fs").unwrap_or("?"),
            r.labels.get("server").unwrap_or("?"),
            r.labels.get("state").unwrap_or("?"),
        );
    }

    println!("\n── GPFS performance metrics (PromQL) ──");
    for (labels, value) in stack
        .pane
        .metric_instant("max by (server) (gpfs_longest_waiter_seconds) > 10", stack.clock.now())
        .unwrap()
    {
        println!("  {labels} longest_waiter={value:.0}s");
    }

    println!("\n── Slack notifications ──");
    for msg in stack.slack.messages() {
        let header = msg.text.lines().next().unwrap_or("");
        println!("  {header}");
    }

    println!("\n── ServiceNow incidents ──");
    for inc in stack.servicenow.incidents() {
        println!(
            "  {} p{} [{}] {}",
            inc.number, inc.priority, inc.assignment_group, inc.short_description
        );
    }

    // Repair and watch it resolve.
    stack.gpfs.repair_server("nsd05");
    for _ in 0..8 {
        stack.step(MINUTE, 5, 3);
    }
    let resolved = stack
        .slack
        .messages()
        .iter()
        .filter(|m| m.text.contains("RESOLVED") && m.text.contains("Gpfs"))
        .count();
    println!("\nafter repair: {resolved} resolved GPFS notification(s)");
}

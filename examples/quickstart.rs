//! Quickstart: bring up the whole Figure-1 pipeline, let it run for a few
//! simulated minutes, and print the single-pane-of-glass dashboard.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shasta_mon::core::{Dashboard, MonitoringStack, PaneQuery, Panel, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    println!("Bringing up the Perlmutter monitoring stack (simulated)...\n");
    let mut stack = MonitoringStack::new(StackConfig::default());

    // Run ten quiet minutes of production traffic.
    for _ in 0..10 {
        stack.step(minute, 50, 25);
    }

    let (log_records, log_errors, metric_records) = stack.bridge_stats();
    let loki_stats = stack.omni.loki().stats();
    let (omni_msgs, omni_bytes) = stack.omni.ingest_totals();
    println!("pipeline state after 10 simulated minutes:");
    println!("  bridge log records pushed ... {log_records}");
    println!("  bridge push errors .......... {log_errors}");
    println!("  bridge metric records ....... {metric_records}");
    println!("  OMNI messages metered ....... {omni_msgs} ({omni_bytes} bytes)");
    println!("  loki entries accepted ....... {}", loki_stats.entries);
    println!("  loki streams ................ {}", stack.omni.loki().stream_count());
    println!("  loki chunks ................. {}", stack.omni.loki().chunk_count());
    println!("  tsdb series ................. {}", stack.omni.tsdb().series_count());

    // The paper's single pane of glass: logs and metrics on one screen.
    let dashboard = Dashboard {
        title: "Perlmutter Health — single pane of glass".into(),
        panels: vec![
            Panel {
                title: "Syslog (latest)".into(),
                query: PaneQuery::Logs(r#"{data_type="syslog"} |= "slurmd""#.into()),
            },
            Panel {
                title: "Redfish events over time".into(),
                query: PaneQuery::LogMetric(
                    r#"sum(count_over_time({data_type="redfish_event"}[60m])) by (Context)"#.into(),
                ),
            },
            Panel {
                title: "Hottest nodes (PromQL over the TSDB)".into(),
                query: PaneQuery::Metric("max by (xname) (shasta_temperature_celsius) > 50".into()),
            },
            Panel {
                title: "Kafka ingest per topic".into(),
                query: PaneQuery::Metric("max by (topic) (kafka_topic_messages_in_total)".into()),
            },
        ],
    };
    let now = stack.clock.now();
    let text = stack
        .pane
        .render_dashboard(&dashboard, 0, now, minute)
        .expect("dashboard queries are valid");
    println!("\n{text}");

    // Kibana-style discovery over the same traffic.
    let hits = stack.omni.discover("lockup", 0, now);
    println!(
        "discovery: {} lines mention \"lockup\" (Elasticsearch-style term search)",
        hits.len()
    );

    println!(
        "alerts dispatched: {} (a healthy machine stays quiet)",
        stack.notifications_dispatched()
    );
}

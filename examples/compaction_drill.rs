//! Compaction drill: a year of simulated telemetry at a fixed seed, then
//! "incident archaeology" — a cold-start query months back into the
//! archive — measured before and after the compactor reshapes storage.
//!
//! The drill proves the tentpole claims end to end:
//!
//! 1. a months-old incident is still queryable after ingester crashes
//!    (cold start: only the durable tiers answer);
//! 2. compaction merges thousands of small age-sealed chunks into few
//!    large cold-tier objects and the same query returns byte-identical
//!    results — fewer objects touched, lower modeled tail latency;
//! 3. byte-identical replayed chunks (the WAL-replay double-persist
//!    artifact) are deduplicated, and the result cache notices;
//! 4. storage amplification (stored bytes / ingested line bytes) drops:
//!    per-object headers and unbatched compression stop being paid per
//!    tiny chunk;
//! 5. the cold tier's transient-failure model injects retried GETs
//!    without ever changing a query result.
//!
//! ```sh
//! cargo run --release --example compaction_drill            # full year + BENCH_PR8.json
//! cargo run --release --example compaction_drill -- --quick # 10 days, no report rewrite
//! ```
//!
//! Everything runs on the virtual clock from a fixed seed; wall-clock
//! timings vary between machines, modeled numbers do not.

use shasta_mon::json::{parse, Json};
use shasta_mon::loki::chunk::SealedChunk;
use shasta_mon::loki::{ColdTierPolicy, Limits, LokiCluster, ObjectStore, QueryStats};
use shasta_mon::model::{LabelSet, LogEntry, SimClock, NANOS_PER_SEC};
use std::time::Instant;

const SEED: u64 = 7;
const HOUR: i64 = 3_600 * NANOS_PER_SEC;

/// Modeled tail-query cost: one storage round trip per object touched
/// (hot tier priced as local disk, cold tier as a remote object-store
/// GET — the same figure `core::stack` charges per cold chunk), plus the
/// block-decode, inflation, and scan terms the stack's slow-query log
/// uses.
fn modeled_ns(s: &QueryStats) -> i64 {
    let hot_chunks = (s.chunks_touched - s.cold_chunks_touched) as i64;
    hot_chunks * 1_000_000
        + s.cold_chunks_touched as i64 * 8_000_000
        + s.blocks_decoded as i64 * 200_000
        + (s.decompressed_bytes as i64 / 1024) * 50_000
        + s.entries_scanned as i64 * 2_000
}

/// xorshift64: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn write_report(section: &str, value: Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_PR8.json");
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse(&text).ok())
        .filter(|v| matches!(v, Json::Object(_)))
        .unwrap_or_else(Json::object);
    root.set(section, value).expect("report root is an object");
    std::fs::write(&path, root.pretty(2) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let days: i64 = if quick { 10 } else { 365 };
    let incident_day: i64 = if quick { 5 } else { 90 };
    let replay_day: i64 = if quick { 7 } else { 180 };
    println!("Compaction drill: {days} simulated days, incident at day {incident_day}\n");

    let clock = SimClock::starting_at(0);
    let limits = Limits {
        compaction_interval_ns: 0, // explicit compact() below, no cadence
        // Archive archaeology wants day-sized splits: hourly splits would
        // re-GET the same compacted object 24 times per day queried
        // (Loki tunes `split_queries_by_interval` up for cold reads too).
        split_interval_ns: 24 * HOUR,
        ..Limits::default()
    };
    let c = LokiCluster::new(2, limits, clock.clone());

    // Six long-lived streams; exactly one carries the incident app.
    let hosts = ["x1000c0s0b0n0", "x1000c0s1b0n0", "x1000c2s0b0n0", "x3000c0s4b0n0"];
    let streams: Vec<LabelSet> = (0..6)
        .map(|i| {
            let app = if i == 0 { "fabric_manager" } else { "dvs" };
            LabelSet::from_pairs([("app", app.to_string()), ("hostname", hosts[i % 4].into())])
        })
        .collect();

    // ── Phase 1: a year of hourly telemetry ───────────────────────────
    let mut rng = Rng(SEED);
    let mut entries_ingested = 0u64;
    for hour in 0..days * 24 {
        let base = hour * HOUR;
        for (i, labels) in streams.iter().enumerate() {
            for k in 0..2 {
                let ts = base + (i as i64) * 1_000 + k * 500;
                let line = format!(
                    "daemon[{}]: heartbeat seq={} temp={}C status=ok",
                    1000 + i,
                    hour * 2 + k,
                    30 + rng.next() % 20,
                );
                c.push(labels.clone(), ts, line).expect("steady push");
                entries_ingested += 1;
            }
        }
        if hour / 24 == incident_day && hour % 24 == 10 {
            for n in 0..50 {
                let line = format!("CabinetLeakDetected cabinet=x1000 sensor=cab_leak_{n}");
                c.push(streams[0].clone(), base + 2_000_000 + n, line).expect("incident push");
                entries_ingested += 1;
            }
        }
        clock.advance(HOUR);
        c.tick(); // age-seal heads: small hourly chunks, as in production
        c.offload(HOUR); // sealed → hot object tier, WALs checkpointed
    }
    c.flush();
    c.offload(0); // everything durable before the cold start

    // The WAL-replay artifact: the same sealed chunk persisted twice
    // (a crash between persist and checkpoint re-offloads on replay).
    let replay_labels = LabelSet::from_pairs([("app", "replay_victim"), ("hostname", "x9000c1")]);
    let replay_entries: Vec<LogEntry> = (0..40)
        .map(|n| LogEntry::new(replay_day * 24 * HOUR + n * 1_000, format!("replayed event {n}")))
        .collect();
    let replay_chunk = SealedChunk::from_entries(&replay_entries);
    let fp = replay_labels.fingerprint();
    c.chunk_store().register_series(fp, &replay_labels);
    c.chunk_store().persist(fp, &replay_chunk);
    c.chunk_store().persist(fp, &replay_chunk);

    // Cold start: crash wipes ingester memory; recovery replays an
    // (already checkpointed, near-empty) WAL. The archive must answer.
    c.crash_shard(0);
    c.recover_shard(0);

    let store = c.chunk_store();
    let hot_objects_before = store.objects().list("chunks/").len();
    let hot_bytes_before = store.objects().stored_bytes();
    let logical_bytes = c.stats().bytes as f64;
    let amp_before = hot_bytes_before as f64 / logical_bytes;
    println!("ingested ..................... {entries_ingested} entries");
    println!("hot objects before ........... {hot_objects_before}");
    println!("storage amplification before . {amp_before:.3}");

    // ── Phase 2: incident archaeology, before compaction ──────────────
    let win = (incident_day * 24 * HOUR - 1, (incident_day + 1) * 24 * HOUR);
    let archaeology = r#"{app="fabric_manager"} |= "CabinetLeakDetected""#;
    c.frontend().invalidate_all();
    let (_, gets0) = store.objects().op_counts();
    let t0 = Instant::now();
    let (recs_before, stats_before) =
        c.query_logs_with_stats(archaeology, win.0, win.1, usize::MAX).expect("cold query");
    let wall_before = t0.elapsed();
    let (_, gets1) = store.objects().op_counts();
    assert_eq!(recs_before.len(), 50, "the incident must be fully recovered");
    assert_eq!(stats_before.cold_chunks_touched, 0, "nothing compacted yet");
    let modeled_before = modeled_ns(&stats_before);
    println!("\narchaeology before compaction:");
    println!("  objects touched ............ {}", stats_before.chunks_touched);
    println!("  hot-tier GETs .............. {}", gets1 - gets0);
    println!("  modeled latency ............ {:.2} ms", modeled_before as f64 / 1e6);
    println!("  wall time .................. {} µs", wall_before.as_micros());

    let dup_win = (replay_day * 24 * HOUR - 1, (replay_day + 1) * 24 * HOUR);
    let dup_before =
        c.query_logs(r#"{app="replay_victim"}"#, dup_win.0, dup_win.1, usize::MAX).unwrap();
    assert_eq!(dup_before.len(), 80, "pre-compaction reads see the replayed duplicate");

    // ── Phase 3: compact ──────────────────────────────────────────────
    // The cold tier models a remote object store: 8ms GET / 15ms PUT,
    // and 5% of objects whose first GET fails transiently.
    store.cold().set_policy(ColdTierPolicy { fail_permille: 50, seed: SEED, ..Default::default() });
    let report = c.compact();
    let hot_objects_after = store.objects().list("chunks/").len();
    let stored_after = store.objects().stored_bytes() + store.cold().stored_bytes();
    let amp_after = stored_after as f64 / logical_bytes;
    println!("\ncompaction:");
    println!("  chunks merged .............. {}", report.chunks_merged);
    println!("  compacted objects written .. {}", report.objects_written);
    println!("  duplicates dropped ......... {}", report.duplicates_dropped);
    println!("  hot objects after .......... {hot_objects_after}");
    println!("  cold objects ............... {}", store.cold().object_count());
    println!("  storage amplification after  {amp_after:.3}");
    assert!(report.chunks_merged > 0 && report.objects_written > 0);
    assert!(report.duplicates_dropped >= 1, "the replayed chunk must dedup");
    assert!(hot_objects_after < hot_objects_before);
    assert!(store.cold().object_count() > 0, "compacted data demoted to the cold tier");
    assert!(amp_after < amp_before, "amplification must drop: {amp_after} vs {amp_before}");

    let dup_after =
        c.query_logs(r#"{app="replay_victim"}"#, dup_win.0, dup_win.1, usize::MAX).unwrap();
    assert_eq!(dup_after.len(), 40, "dedup must reach cached results too");

    // ── Phase 4: the same archaeology, now against the cold tier ──────
    c.frontend().invalidate_all();
    let t1 = Instant::now();
    let (recs_after, stats_after) =
        c.query_logs_with_stats(archaeology, win.0, win.1, usize::MAX).expect("cold-tier query");
    let wall_after = t1.elapsed();
    assert_eq!(recs_before, recs_after, "compaction must not change query results");
    assert!(stats_after.cold_chunks_touched > 0, "the read came from the cold tier");
    assert!(
        stats_after.chunks_touched < stats_before.chunks_touched,
        "consolidation must shrink objects touched: {} vs {}",
        stats_after.chunks_touched,
        stats_before.chunks_touched,
    );
    let modeled_after = modeled_ns(&stats_after);
    assert!(
        modeled_after < modeled_before,
        "tail latency must improve: {modeled_after} vs {modeled_before}"
    );
    println!("\narchaeology after compaction:");
    println!("  objects touched ............ {}", stats_after.chunks_touched);
    println!("  of those, cold tier ........ {}", stats_after.cold_chunks_touched);
    println!("  modeled latency ............ {:.2} ms", modeled_after as f64 / 1e6);
    println!("  wall time .................. {} µs", wall_after.as_micros());

    // ── Phase 5: cold-tier faults are transient and invisible ─────────
    store.cold().set_policy(ColdTierPolicy {
        fail_permille: 1_000, // every first GET fails once
        seed: SEED,
        ..Default::default()
    });
    c.frontend().invalidate_all();
    let recs_faulty =
        c.query_logs(archaeology, win.0, win.1, usize::MAX).expect("query under faults");
    assert_eq!(recs_before, recs_faulty, "retried GETs must not change results");
    let failures = store.cold().transient_failures();
    assert!(failures > 0, "the failure coin must have fired");
    println!("\ncold tier: {failures} transient GET failures, all retried successfully");

    if !quick {
        let mut section = Json::object();
        for (k, v) in [
            ("entries_ingested", entries_ingested as f64),
            ("hot_objects_before", hot_objects_before as f64),
            ("hot_objects_after", hot_objects_after as f64),
            ("cold_objects", store.cold().object_count() as f64),
            ("objects_merged", report.chunks_merged as f64),
            ("compacted_objects_written", report.objects_written as f64),
            ("duplicates_dropped", report.duplicates_dropped as f64),
            ("storage_amplification_before", (amp_before * 1e4).round() / 1e4),
            ("storage_amplification_after", (amp_after * 1e4).round() / 1e4),
            ("objects_touched_before", stats_before.chunks_touched as f64),
            ("objects_touched_after", stats_after.chunks_touched as f64),
            ("tail_query_modeled_ms_before", (modeled_before as f64 / 1e3).round() / 1e3),
            ("tail_query_modeled_ms_after", (modeled_after as f64 / 1e3).round() / 1e3),
            ("tail_query_wall_us_before", wall_before.as_micros() as f64),
            ("tail_query_wall_us_after", wall_after.as_micros() as f64),
            ("cold_transient_failures", failures as f64),
        ] {
            section.set(k, Json::Number(v)).unwrap();
        }
        write_report("compaction_drill", section);
        println!("\nwrote BENCH_PR8.json (section compaction_drill)");
    }

    println!("\ncompaction drill: all assertions hold");
}

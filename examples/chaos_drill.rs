//! Chaos drill: run the full pipeline through a scripted failure schedule
//! — an ingester crash, a bus brownout, a credential drop and a flaky
//! Slack webhook — and print the resilience report proving zero loss.
//!
//! ```sh
//! cargo run --example chaos_drill
//! ```
//!
//! Every fault fires on the virtual clock from a seeded schedule, so two
//! runs with the same seed print byte-identical reports.

use shasta_mon::core::{ChaosEngine, ChaosFault, MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::LeakZone;

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    println!("Chaos drill: 20 simulated minutes, faults on a fixed schedule\n");
    println!("  t+2m   ingester shard 0 crashes (recovers t+6m via WAL replay)");
    println!("  t+3m   telemetry credentials revoked (bridges re-authenticate)");
    println!("  t+4m   bus brownout until t+5m (bridges hold cursors, retry)");
    println!("  t+0..  slack webhook fails 50% of sends (delivery queue retries)\n");

    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.install_chaos(
        ChaosEngine::new(42)
            .inject(ChaosFault::IngesterCrash { at: 2 * minute, shard: 0, recover_at: 6 * minute })
            .inject(ChaosFault::SubscriptionDrop { at: 3 * minute })
            .inject(ChaosFault::BusBrownout { from: 4 * minute, until: 5 * minute })
            .inject(ChaosFault::FlakyReceiver {
                receiver: "slack".into(),
                from: 0,
                until: 30 * minute,
                fail_permille: 500,
            }),
    );

    let mut generated_syslog = 0usize;
    for i in 1..=20 {
        // A cabinet leak mid-run: the alert path must survive the chaos too.
        if i == 7 {
            let chassis = stack.machine.topology().chassis()[3];
            stack.inject_leak(chassis, 'A', LeakZone::Front);
        }
        stack.step(minute, 5, 3);
        generated_syslog += 5;
    }

    let stored = stack
        .pane
        .logs(r#"{data_type="syslog"}"#, 0, stack.clock.now() + 1, usize::MAX)
        .unwrap()
        .len();
    println!("syslog lines generated ....... {generated_syslog}");
    println!("syslog lines queryable ....... {stored}");
    println!("slack messages delivered ..... {}\n", stack.slack.messages().len());
    println!("{}", stack.resilience_report().render());

    assert_eq!(stored, generated_syslog, "chaos drill must lose no logs");
}

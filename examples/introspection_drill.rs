//! Introspection drill: the monitor turned on itself.
//!
//! ```sh
//! cargo run --example introspection_drill
//! ```
//!
//! One deterministic run demonstrates the whole deep-introspection
//! surface:
//!
//! 1. a heavy log query lands in the self-ingested slow-query log — a
//!    JSON line in `{job="omni-self", component="slowlog"}` carrying its
//!    statistics and trace id, queryable with LogQL like any stream;
//! 2. that trace id resolves to a span tree: the `query` root with its
//!    `queue_wait` and per-split `split_execute` children;
//! 3. the same trace rides the `omni_query_latency_seconds` histogram as
//!    an exemplar on the scraped `omni-self` page;
//! 4. a forced latency regression burns the `query-latency` SLO's error
//!    budget fast enough that the `SloFastBurn` burn-rate meta-alert
//!    fires through vmalert → Alertmanager → Slack/ServiceNow;
//! 5. tail sampling keeps the slow traces, samples the fast ones, and
//!    bounds retention under a flood of queries.
//!
//! Everything derives from the stack seed and the virtual clock, so two
//! runs print byte-identical output.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::exporters::{Exporter, SelfExporter};
use shasta_mon::json::{parse, Json};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::obs::{format_trace_id, parse_trace_id, TailSampling};

fn main() {
    let minute = 60 * NANOS_PER_SEC;
    println!("Introspection drill: slow queries, span trees, exemplars, SLO burn\n");

    let config = StackConfig {
        // 0.2ms of modeled work marks a query slow — the warm-up load
        // makes the full-history query cross it while the probe queries
        // of part 5 stay under it.
        slow_query_threshold_ns: 200_000,
        // Aggressive tail sampling: keep slow traces, one in eight of
        // the fast ones, at most 64 overall.
        trace_sampling: TailSampling {
            latency_threshold_ns: 200_000,
            keep_one_in: 8,
            max_retained: 64,
        },
        ..StackConfig::default()
    };
    let mut stack = MonitoringStack::new(config);

    // --- Part 1: a slow query self-ingests ----------------------------
    // Three hours of background load so the history query has chunks,
    // blocks and multiple one-hour splits to chew through.
    for _ in 0..36 {
        stack.step(5 * minute, 30, 10);
    }
    let history = stack
        .pane
        .logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), 10_000)
        .expect("history query");
    println!("heavy query returned {} entries", history.len());
    assert!(history.len() > 1_000, "warm-up must produce a heavy scan");
    // The next step drains the frontend's query records into the
    // introspection surfaces.
    stack.step(minute, 5, 5);
    let slowlog = stack
        .pane
        .logs(r#"{job="omni-self", component="slowlog"}"#, 0, stack.clock.now(), 100)
        .expect("slowlog query");
    assert!(!slowlog.is_empty(), "the heavy query must land in the slow-query log");
    let line = &slowlog[0].entry.line;
    println!("slow-query log line:\n  {line}\n");
    let parsed = parse(line).expect("slow-query line is JSON");
    let latency_ms = parsed.pointer("/latency_ms").and_then(Json::as_f64).expect("latency_ms");
    assert!(latency_ms >= 0.2, "slow means over the 0.2ms threshold, got {latency_ms}");
    let trace_id = parsed
        .pointer("/trace_id")
        .and_then(Json::as_str)
        .and_then(parse_trace_id)
        .expect("slow-query line carries a trace id");

    // --- Part 2: the trace id resolves to a span tree -----------------
    let timeline = stack.traces().render_timeline(trace_id);
    println!("span tree for trace {}:\n{timeline}", format_trace_id(trace_id));
    for stage in ["query", "queue_wait", "split_execute"] {
        assert!(timeline.contains(stage), "stage {stage} missing:\n{timeline}");
    }

    // --- Part 3: the exemplar links the same trace --------------------
    let page = SelfExporter::new(stack.registry().clone()).render();
    let exemplar = page
        .lines()
        .find(|l| {
            l.starts_with("# EXEMPLAR omni_query_latency_seconds_bucket")
                && l.contains(&format_trace_id(trace_id))
        })
        .expect("latency histogram must carry the slow query's trace as an exemplar");
    println!("exemplar on the omni-self page:\n  {exemplar}\n");

    // --- Part 4: a latency regression fires the burn-rate meta-alert --
    // Every step runs a full-history query with a fresh line filter, so
    // the results cache cannot absorb it and every run re-scans three
    // hours of chunks. Each is slow: the query-latency SLO sees only bad
    // events and its fast-window burn rate pins at 1/(1-0.95) = 20x —
    // over the 14x threshold of SloFastBurn.
    let mut fired_step = None;
    for i in 0..15 {
        let now = stack.clock.now();
        let regression = format!(r#"{{data_type="syslog"}} != "cache-buster-{i}""#);
        let _ = stack.pane.logs(&regression, 0, now, 10_000);
        let notifs = stack.step(minute, 5, 5);
        if notifs.iter().flat_map(|n| &n.alerts).any(|a| a.name() == "SloFastBurn") {
            fired_step = Some(i);
            break;
        }
    }
    let fired_step = fired_step.expect("SloFastBurn must fire within 15 minutes of regression");
    println!("SloFastBurn fired {} minutes into the regression", fired_step + 1);
    let snap = stack
        .slos()
        .snapshot(stack.clock.now())
        .into_iter()
        .find(|s| s.name == "query-latency")
        .expect("query-latency SLO registered");
    println!(
        "query-latency SLO: fast burn {:.1}x, slow burn {:.1}x, budget {:.0}% left",
        snap.fast_burn,
        snap.slow_burn,
        snap.budget_remaining * 100.0
    );
    assert!(snap.fast_burn > 14.0, "all-bad fast window must burn over threshold: {snap:?}");
    let slack = stack.slack.messages();
    assert!(
        slack.iter().any(|m| m.text.contains("SloFastBurn")),
        "the meta-alert must reach Slack: {slack:?}"
    );
    assert!(
        !stack.servicenow.incidents().is_empty(),
        "critical burn alerts open a ServiceNow incident"
    );

    // --- Part 5: tail sampling bounds retention under a query flood ---
    for _ in 0..150 {
        let now = stack.clock.now();
        // Cheap probes: a one-minute tail window stays under the slow
        // threshold, so these traces face the one-in-eight sampler.
        let _ = stack.pane.logs(r#"{data_type="syslog"}"#, now - minute, now, 100);
    }
    stack.step(minute, 5, 5);
    let stats = stack.traces().sample_stats();
    let retained = stack.traces().retained();
    println!(
        "\ntail sampling after the flood: {retained} retained \
         (kept {} slow, {} sampled; dropped {}, evicted {})",
        stats.kept_slow, stats.kept_sampled, stats.dropped, stats.evicted
    );
    assert!(retained <= 64, "max_retained must bound the store, got {retained}");
    assert!(stats.kept_slow > 0, "slow traces are always kept");
    assert!(stats.dropped > 0, "fast traces face the sampler");

    println!("\nintrospection drill: all assertions hold");
}

//! Experiments E2 & E3 — Figure 4 (the Redfish event queried back from
//! Loki) and Figure 5 (the count_over_time metric stepping 0 → 1 at the
//! event time and back after the 60-minute window).

use shasta_mon::core::redfish_to_loki;
use shasta_mon::loki::{Limits, LokiCluster};
use shasta_mon::model::{SimClock, NANOS_PER_SEC};
use shasta_mon::redfish::RedfishEvent;

const HOUR: i64 = 3_600 * NANOS_PER_SEC;

fn loki_with_paper_event() -> (LokiCluster, i64) {
    // The paper's Loki cluster has 8 worker nodes.
    let clock = SimClock::starting_at(0);
    let loki = LokiCluster::new(8, Limits::default(), clock);
    let event = RedfishEvent::paper_leak_event();
    let ts = event.timestamp;
    loki.push_record(redfish_to_loki(&event, "perlmutter")).unwrap();
    (loki, ts)
}

#[test]
fn fig4_event_query_returns_the_event() {
    let (loki, ts) = loki_with_paper_event();
    let records = loki
        .query_logs(r#"{data_type="redfish_event"} |= "CabinetLeakDetected""#, 0, ts + HOUR, 100)
        .unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].entry.ts, ts);
    assert_eq!(records[0].labels.get("Context"), Some("x1203c1b0"));
    assert!(records[0].entry.line.contains("CabinetLeakDetected"));
}

#[test]
fn fig4_unrelated_filters_return_nothing() {
    let (loki, ts) = loki_with_paper_event();
    for q in [
        r#"{data_type="redfish_event"} |= "SomethingElse""#,
        r#"{data_type="syslog"}"#,
        r#"{data_type="redfish_event", Context="x9999c9b9"}"#,
    ] {
        assert!(
            loki.query_logs(q, 0, ts + HOUR, 100).unwrap().is_empty(),
            "query {q} should be empty"
        );
    }
}

#[test]
fn fig5_paper_query_steps_zero_to_one() {
    let (loki, event_ts) = loki_with_paper_event();
    // The paper's exact Figure 5 query (labels adjusted to the json
    // stage's extracted names).
    let query = r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Severity, cluster, Context, MessageId, Message)"#;
    let step = 10 * 60 * NANOS_PER_SEC;
    let matrix = loki.query_range(query, event_ts - HOUR, event_ts + 2 * HOUR, step).unwrap();
    assert_eq!(matrix.len(), 1, "one leak location -> one series");
    let (labels, samples) = &matrix[0];
    // "sum(...) by (...)" groups by the extracted labels.
    assert_eq!(labels.get("Severity"), Some("Warning"));
    assert_eq!(labels.get("Context"), Some("x1203c1b0"));
    assert_eq!(labels.get("cluster"), Some("perlmutter"));
    assert_eq!(labels.get("MessageId"), Some("CrayAlerts.1.0.CabinetLeakDetected"));
    // Like Loki/Grafana, the series only carries points while the
    // 60-minute lookback window contains the event: the graph "increases
    // from zero to one" at the event and drops out an hour later.
    for s in samples {
        assert!(
            s.ts >= event_ts && s.ts < event_ts + HOUR,
            "sample at t={} outside the event's window (event at {event_ts})",
            s.ts
        );
        assert_eq!(s.value, 1.0);
    }
    // The window is 60m sampled every 10m: exactly 6 points at value 1.
    assert_eq!(samples.len(), 6);
    assert_eq!(samples.first().unwrap().ts, event_ts);
}

#[test]
fn fig5_multiple_locations_return_multiple_vectors() {
    // "if multiple leak events from different location are found, Loki
    // returns multiple vectors with different labels instead of one
    // vector without labels."
    let clock = SimClock::starting_at(0);
    let loki = LokiCluster::new(4, Limits::default(), clock);
    let base = RedfishEvent::paper_leak_event();
    for context in ["x1203c1b0", "x1000c3b0", "x1102c4b0"] {
        let mut ev = base.clone();
        ev.context = context.parse().unwrap();
        loki.push_record(redfish_to_loki(&ev, "perlmutter")).unwrap();
    }
    let v = loki
        .query_instant(
            r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Context)"#,
            base.timestamp + NANOS_PER_SEC,
        )
        .unwrap();
    assert_eq!(v.len(), 3);
    assert!(v.iter().all(|(_, count)| *count == 1.0));
    let mut contexts: Vec<&str> = v.iter().map(|(l, _)| l.get("Context").unwrap()).collect();
    contexts.sort();
    assert_eq!(contexts, vec!["x1000c3b0", "x1102c4b0", "x1203c1b0"]);
}

#[test]
fn fig5_sum_collapses_without_grouping() {
    let clock = SimClock::starting_at(0);
    let loki = LokiCluster::new(2, Limits::default(), clock);
    let base = RedfishEvent::paper_leak_event();
    for context in ["x1203c1b0", "x1000c3b0"] {
        let mut ev = base.clone();
        ev.context = context.parse().unwrap();
        loki.push_record(redfish_to_loki(&ev, "perlmutter")).unwrap();
    }
    let v = loki
        .query_instant(
            r#"sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" [60m]))"#,
            base.timestamp + NANOS_PER_SEC,
        )
        .unwrap();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].1, 2.0);
}

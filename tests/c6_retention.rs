//! Experiment C6 — "up to two years of operational data is immediately
//! available and more can be restored."

use shasta_mon::core::Omni;
use shasta_mon::loki::Limits;
use shasta_mon::model::{labels, SimClock, NANOS_PER_SEC};

const DAY: i64 = 86_400 * NANOS_PER_SEC;

fn omni_with_two_year_retention() -> Omni {
    let limits = Limits { retention_ns: 730 * DAY, ..Default::default() };
    Omni::new(4, limits, SimClock::starting_at(0))
}

#[test]
fn data_within_two_years_is_hot() {
    let omni = omni_with_two_year_retention();
    // Write one event per 30 days over two years.
    for day in (0..730).step_by(30) {
        omni.ingest_log(labels!("app" => "history"), day * DAY + 1, format!("day {day}")).unwrap();
    }
    omni.clock().set(730 * DAY);
    omni.loki().enforce_retention();
    let records = omni.loki().query_logs(r#"{app="history"}"#, 0, 731 * DAY, 1000).unwrap();
    // Everything still within the window stays queryable.
    assert!(records.len() >= 24, "got {}", records.len());
}

#[test]
fn data_beyond_two_years_expires_but_restores_from_archive() {
    let omni = omni_with_two_year_retention();
    omni.ingest_log(labels!("app" => "ancient"), DAY, "from the before-times").unwrap();
    omni.loki().flush();

    // Operations archives the window before it expires.
    let archived = omni.archive_window(r#"{app="ancient"}"#, 0, 2 * DAY).unwrap();
    assert_eq!(archived, 1);

    // Three years later the hot copy is gone.
    omni.clock().set(3 * 365 * DAY);
    omni.loki().enforce_retention();
    assert!(omni.loki().query_logs(r#"{app="ancient"}"#, 0, 2 * DAY, 10).unwrap().is_empty());

    // "more can be restored": bring it back from cold storage.
    let restored = omni.restore_window(0, 2 * DAY);
    assert_eq!(restored, 1);
    let back =
        omni.loki().query_logs(r#"{app="ancient", restored="true"}"#, 0, 2 * DAY, 10).unwrap();
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].entry.line, "from the before-times");
}

#[test]
fn retention_also_applies_to_tsdb_blocks() {
    use shasta_mon::tsdb::{Tsdb, TsdbConfig};
    let db = Tsdb::new(TsdbConfig { shards: 2, block_max_samples: 16, retention_ns: 730 * DAY });
    for day in 0..100 {
        for i in 0..24 {
            db.ingest_sample(
                "temp",
                labels!("node" => "x1"),
                day * DAY + i * 3_600 * NANOS_PER_SEC,
                42.0,
            );
        }
    }
    let dropped = db.enforce_retention(800 * DAY);
    assert!(dropped > 0, "blocks fully behind the horizon must drop");
}

//! Experiment E1 — Figures 2 & 3: the raw Telemetry-API Redfish event and
//! its transformation into the Loki push payload, byte-for-byte.

use shasta_mon::core::redfish_to_loki;
use shasta_mon::json::{parse, Json};
use shasta_mon::model::parse_iso8601;
use shasta_mon::redfish::RedfishEvent;

/// The paper's Figure 2 payload, re-keyed here as the reference document.
const FIGURE2_JSON: &str = r#"{
  "metrics": {
    "messages": [
      {
        "Context": "x1203c1b0",
        "Events": [
          {
            "EventTimestamp": "2022-03-03T01:47:57+00:00",
            "Severity": "Warning",
            "Message": "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.",
            "MessageId": "CrayAlerts.1.0.CabinetLeakDetected",
            "MessageArgs": ["A, Front"],
            "OriginOfCondition": {"@odata.id": "/redfish/v1/Chassis/Enclosure"}
          }
        ]
      }
    ]
  }
}"#;

#[test]
fn simulator_reproduces_figure2_payload() {
    let reference = parse(FIGURE2_JSON).unwrap();
    let generated = RedfishEvent::paper_leak_event().to_telemetry_json();
    assert_eq!(generated, reference, "generated Telemetry-API payload must match Figure 2");
}

#[test]
fn figure2_decodes_and_transforms_to_figure3() {
    let reference = parse(FIGURE2_JSON).unwrap();
    let events = RedfishEvent::from_telemetry_json(&reference).unwrap();
    assert_eq!(events.len(), 1);
    let record = redfish_to_loki(&events[0], "perlmutter");

    // Figure 3 stream labels.
    let expected_labels: Vec<(&str, &str)> =
        vec![("Context", "x1203c1b0"), ("cluster", "perlmutter"), ("data_type", "redfish_event")];
    assert_eq!(record.labels.iter().collect::<Vec<_>>(), expected_labels);

    // Figure 3 value: ["1646272077000000000", '{...}'].
    assert_eq!(record.entry.ts, 1_646_272_077_000_000_000);
    assert_eq!(
        record.entry.line,
        r#"{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}"#
    );
}

#[test]
fn transformation_drops_exactly_the_paper_fields() {
    let reference = parse(FIGURE2_JSON).unwrap();
    let events = RedfishEvent::from_telemetry_json(&reference).unwrap();
    let record = redfish_to_loki(&events[0], "perlmutter");
    let content = parse(&record.entry.line).unwrap();
    // "The OriginOfCondition field contains a link ... not useful" and
    // "the MessageArgs field has duplicate information" — both removed.
    assert!(content.get("OriginOfCondition").is_none());
    assert!(content.get("MessageArgs").is_none());
    // The timestamp moved out of the content into the entry.
    assert!(content.get("EventTimestamp").is_none());
    // What remains is exactly Severity, MessageId, Message.
    assert_eq!(content.as_object().unwrap().len(), 3);
}

#[test]
fn timestamp_conversion_matches_figure3() {
    // ISO 8601 (Fig 2) → unix epoch nanoseconds (Fig 3).
    let ns = parse_iso8601("2022-03-03T01:47:57+00:00").unwrap();
    assert_eq!(ns.to_string(), "1646272077000000000");
}

#[test]
fn grafana_can_reextract_from_content() {
    // "Grafana can further extract information if a log string is
    // structured in JSON" — the content must reparse.
    let record = redfish_to_loki(&RedfishEvent::paper_leak_event(), "perlmutter");
    let content = parse(&record.entry.line).unwrap();
    assert_eq!(content.get("Severity").and_then(Json::as_str), Some("Warning"));
}

//! Whole-pipeline integration: Figure 1 wired end to end, both case
//! studies concurrently, plus data-path integrity checks.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::{LeakZone, SwitchState};

const MINUTE: i64 = 60 * NANOS_PER_SEC;

#[test]
fn both_case_studies_at_once() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 10, 5);

    let chassis = stack.machine.topology().chassis()[1];
    let switch = stack.machine.topology().switches()[2];
    stack.inject_leak(chassis, 'A', LeakZone::Front);
    stack.take_switch_offline(switch, SwitchState::Unknown);

    for _ in 0..6 {
        stack.step(MINUTE, 10, 5);
    }

    let texts: Vec<String> = stack.slack.messages().iter().map(|m| m.text.clone()).collect();
    assert!(texts.iter().any(|t| t.contains("PerlmutterCabinetLeak")), "{texts:?}");
    assert!(texts.iter().any(|t| t.contains("PerlmutterSwitchOffline")), "{texts:?}");
    // Both criticals opened incidents.
    assert!(stack.servicenow.incidents().len() >= 2);
}

#[test]
fn logs_and_metrics_flow_without_loss() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    let mut syslog_in = 0u64;
    for _ in 0..10 {
        stack.step(MINUTE, 25, 10);
        syslog_in += 25;
    }
    // Everything the generators produced arrived in Loki.
    let syslog_stored =
        stack.pane.logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), usize::MAX).unwrap().len()
            as u64;
    assert_eq!(syslog_stored, syslog_in);
    let container_stored = stack
        .pane
        .logs(r#"{data_type="container_log"}"#, 0, stack.clock.now(), usize::MAX)
        .unwrap()
        .len() as u64;
    assert_eq!(container_stored, 100);
    let (_, errors, _) = stack.bridge_stats();
    assert_eq!(errors, 0);
    // Metric side: one temperature series per node plus supply/return
    // loops per CDU.
    let v =
        stack.pane.metric_instant("count(shasta_temperature_celsius)", stack.clock.now()).unwrap();
    let nodes = stack.machine.topology().nodes().len() as f64;
    let cdus = stack.machine.topology().cdus().len() as f64;
    assert_eq!(v[0].1, nodes + 2.0 * cdus);
    // CDU flow telemetry flows through the new topic.
    let flow = stack.pane.metric_instant("count(shasta_flow_lpm)", stack.clock.now()).unwrap();
    assert_eq!(flow[0].1, cdus);
}

#[test]
fn grafana_style_label_browsing() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    for _ in 0..3 {
        stack.step(MINUTE, 10, 10);
    }
    let data_types = stack.omni.loki().label_values("data_type");
    assert!(data_types.contains(&"syslog".to_string()));
    assert!(data_types.contains(&"container_log".to_string()));
}

#[test]
fn vmagent_up_metric_covers_all_exporters() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let up = stack.pane.metric_instant("up", stack.clock.now()).unwrap();
    // node, kafka, blackbox, aruba, gpfs exporters + the self-scrape job.
    assert_eq!(up.len(), 6);
    assert!(up.iter().all(|(_, v)| *v == 1.0));
}

#[test]
fn deterministic_replay() {
    // The same seed produces the same stored data and the same alerts.
    let run = || {
        let mut stack = MonitoringStack::new(StackConfig::default());
        for _ in 0..5 {
            stack.step(MINUTE, 10, 5);
        }
        let chassis = stack.machine.topology().chassis()[0];
        stack.inject_leak(chassis, 'A', LeakZone::Front);
        for _ in 0..5 {
            stack.step(MINUTE, 10, 5);
        }
        (
            stack.omni.loki().stats().entries,
            stack.slack.messages().len(),
            stack.servicenow.incidents().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn gpfs_failure_reaches_slack() {
    // The paper's §V future work, implemented: GPFS health monitoring
    // through the same Loki path.
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    stack.fail_gpfs_server("nsd03", shasta_mon::shasta::GpfsState::Failed);
    for _ in 0..6 {
        stack.step(MINUTE, 0, 0);
    }
    // The event line is in Loki...
    let logs = stack
        .pane
        .logs(r#"{app="gpfs_monitor"} |= "gpfs_server_state""#, 0, stack.clock.now(), 10)
        .unwrap();
    assert!(!logs.is_empty());
    assert!(logs[0].entry.line.contains("server:nsd03"));
    // ...the Ruler rule fired into Slack...
    assert!(
        stack.slack.messages().iter().any(|m| m.text.contains("GpfsServerUnhealthy")),
        "slack: {:?}",
        stack.slack.messages()
    );
    // ...and the long-waiter metric rule from vmalert follows.
    let waiters = stack
        .pane
        .metric_instant(
            r#"max by (server) (gpfs_longest_waiter_seconds{server="nsd03"})"#,
            stack.clock.now(),
        )
        .unwrap();
    assert!(waiters[0].1 > 300.0, "waiters = {:?}", waiters);
}

#[test]
fn kibana_style_discovery_over_bridge_traffic() {
    // OMNI runs an Elasticsearch tier next to Loki; term discovery works
    // over the same traffic the bridges deliver.
    let mut stack = MonitoringStack::new(StackConfig::default());
    for _ in 0..5 {
        stack.step(MINUTE, 20, 10);
    }
    let (messages, bytes) = stack.omni.ingest_totals();
    assert!(messages > 0, "bridge traffic must be metered through OMNI");
    assert!(bytes > 0);
    let hits = stack.omni.discover("slurmd", 0, stack.clock.now());
    assert!(!hits.is_empty(), "syslog terms must be discoverable");
    let (docs, terms, _) = stack.omni.discovery_stats();
    assert_eq!(docs as u64, messages);
    assert!(terms > 50);
}

#[test]
fn chunks_offload_to_disk_tier_during_long_runs() {
    // "Chunks are first stored in memory, and then moved to disk": after
    // a few simulated hours the stack's hourly offload pass has moved
    // sealed chunks to the object store, and history stays queryable.
    let config = StackConfig {
        limits: shasta_mon::loki::Limits {
            chunk_target_bytes: 2 * 1024, // seal quickly
            ..Default::default()
        },
        ..Default::default()
    };
    let mut stack = MonitoringStack::new(config);
    for _ in 0..36 {
        stack.step(5 * MINUTE, 50, 20); // 3 simulated hours
    }
    let store = stack.omni.loki().chunk_store();
    assert!(
        store.objects().object_count() > 0,
        "sealed chunks older than an hour must move to the disk tier"
    );
    // Early entries live only in the disk tier now, yet still answer.
    let early = stack.pane.logs(r#"{data_type="syslog"}"#, 0, 30 * MINUTE, usize::MAX).unwrap();
    assert!(!early.is_empty(), "offloaded history must stay queryable");
}

#[test]
fn telemetry_api_gateways_balanced() {
    // The bridges pull by offset (at-least-once), so gateway load shows
    // up as served requests rather than held subscriptions.
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 10, 10);
    let loads = stack.api.gateway_loads();
    assert_eq!(loads.len(), 4);
    let total: u64 = loads.iter().map(|l| l.total_requests).sum();
    assert!(total > 0, "bridge pulls must route through the gateways");
    let max = loads.iter().map(|l| l.total_requests).max().unwrap();
    let min = loads.iter().map(|l| l.total_requests).min().unwrap();
    assert!(max - min <= 1, "least-loaded balancing keeps spread tight: {loads:?}");
}

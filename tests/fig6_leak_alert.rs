//! Experiment E4 — Figure 6: the Slack alert generated from the Redfish
//! leak event, produced through the full Ruler → Alertmanager → Slack
//! path.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::LeakZone;

const MINUTE: i64 = 60 * NANOS_PER_SEC;

#[test]
fn leak_event_produces_figure6_slack_alert() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let chassis = stack.machine.topology().chassis()[2];
    stack.inject_leak(chassis, 'A', LeakZone::Front);
    for _ in 0..6 {
        stack.step(MINUTE, 0, 0);
    }
    let messages = stack.slack.messages();
    assert!(!messages.is_empty(), "a leak must reach Slack");
    let leak_msg = messages
        .iter()
        .find(|m| m.text.contains("PerlmutterCabinetLeak"))
        .expect("the Ruler rule's alert must be among the messages");
    // Figure 6's content: status header, location, the message text.
    assert!(leak_msg.text.contains("[FIRING]"));
    assert!(leak_msg.text.contains(&format!("{chassis}b0"))); // chassis BMC context
    assert!(leak_msg.text.contains("detected a leak"));
    assert!(leak_msg.text.contains("CrayAlerts.1.0.CabinetLeakDetected"));
    // "enriched with different types of fonts and bullet points".
    assert!(leak_msg.text.contains("• *"));
    assert!(leak_msg.text.contains('*'));
    assert_eq!(leak_msg.channel, "#perlmutter-alerts");
}

#[test]
fn no_leak_no_alert() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    for _ in 0..10 {
        stack.step(MINUTE, 10, 5);
    }
    assert!(
        stack.slack.is_empty(),
        "healthy machine must stay silent, got {:?}",
        stack.slack.messages()
    );
}

#[test]
fn for_hold_prevents_instant_firing() {
    // The paper: "If the return value is greater than zero and it lasts
    // more than one minutes, an alert will be generated."
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let chassis = stack.machine.topology().chassis()[0];
    stack.inject_leak(chassis, 'A', LeakZone::Front);
    // 30 seconds later: pipeline has run but the 1-minute hold has not
    // elapsed; nothing in Slack from the Ruler's leak rule yet.
    stack.step(30 * NANOS_PER_SEC, 0, 0);
    assert!(stack.slack.messages().iter().all(|m| !m.text.contains("PerlmutterCabinetLeak")));
}

#[test]
fn leak_also_lands_in_servicenow_as_incident() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let chassis = stack.machine.topology().chassis()[1];
    stack.inject_leak(chassis, 'B', LeakZone::Rear);
    for _ in 0..6 {
        stack.step(MINUTE, 0, 0);
    }
    let incidents = stack.servicenow.incidents();
    assert!(!incidents.is_empty(), "critical alert routes to ServiceNow");
    assert_eq!(incidents[0].assignment_group, "nersc-ops");
    assert_eq!(incidents[0].priority, 1);
    // The incident's CI is bound to the chassis BMC from the CMDB.
    assert!(incidents[0].ci.is_some());
}

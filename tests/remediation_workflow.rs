//! Automated remediation workflows end to end: a switch fault fires an
//! alert, the playbook restarts the switch, the alert resolves, and the
//! ServiceNow incident auto-closes with MTTR recorded.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::{GpfsState, SwitchState};

const MINUTE: i64 = 60 * NANOS_PER_SEC;

fn remediating_stack() -> MonitoringStack {
    MonitoringStack::new(StackConfig { auto_remediate: true, ..Default::default() })
}

#[test]
fn switch_fault_self_heals() {
    let mut stack = remediating_stack();
    stack.step(MINUTE, 0, 0);
    let switch = stack.machine.topology().switches()[4];
    stack.take_switch_offline(switch, SwitchState::Unknown);
    for _ in 0..12 {
        stack.step(MINUTE, 0, 0);
    }
    // The playbook ran and journaled.
    let journal = stack.remediation_journal();
    assert!(
        journal.iter().any(|e| e.outcome.contains(&format!("restarted switch {switch}"))),
        "journal: {journal:?}"
    );
    // The fabric is healthy again.
    assert_eq!(stack.fabric.switch_state(&switch), Some(SwitchState::Online));
    // The alert resolved in Slack.
    assert!(stack.slack.messages().iter().any(|m| m.text.contains("[RESOLVED]")));
}

#[test]
fn gpfs_fault_self_heals_and_incident_resolves() {
    let mut stack = remediating_stack();
    stack.step(MINUTE, 0, 0);
    stack.fail_gpfs_server("nsd02", GpfsState::Failed);
    for _ in 0..15 {
        stack.step(MINUTE, 0, 0);
    }
    let journal = stack.remediation_journal();
    assert!(
        journal.iter().any(|e| e.outcome.contains("repaired GPFS server nsd02")),
        "journal: {journal:?}"
    );
    // Incident opened and auto-resolved when the clear event arrived.
    let incidents = stack.servicenow.incidents();
    assert!(!incidents.is_empty());
    assert!(
        incidents.iter().any(|i| i.state == shasta_mon::servicenow::IncidentState::Resolved),
        "incidents: {incidents:?}"
    );
    assert!(stack.servicenow.mttr_ns().is_some());
}

#[test]
fn leak_files_operator_task_but_does_not_clear_itself() {
    let mut stack = remediating_stack();
    stack.step(MINUTE, 0, 0);
    let chassis = stack.machine.topology().chassis()[0];
    stack.inject_leak(chassis, 'A', shasta_mon::shasta::LeakZone::Front);
    for _ in 0..6 {
        stack.step(MINUTE, 0, 0);
    }
    let journal = stack.remediation_journal();
    assert!(journal.iter().any(|e| e.outcome.contains("operator task filed")));
    // A leak cannot be fixed by software: the machine still reports it.
    assert_eq!(stack.machine.leaking_chassis(), vec![chassis]);
}

#[test]
fn remediation_off_by_default() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let switch = stack.machine.topology().switches()[0];
    stack.take_switch_offline(switch, SwitchState::Offline);
    for _ in 0..6 {
        stack.step(MINUTE, 0, 0);
    }
    assert!(stack.remediation_journal().is_empty());
    assert_eq!(stack.fabric.switch_state(&switch), Some(SwitchState::Offline));
}

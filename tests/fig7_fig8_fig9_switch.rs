//! Experiments E5, E6, E7 — Figures 7, 8 and 9: the switch-offline case
//! study. The fabric-manager monitor's event line, the pattern-stage
//! extraction, the alerting rule's evaluation, and the Slack
//! notification.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::logql::{parse_log_query, Pipeline};
use shasta_mon::loki::AlertingRule;
use shasta_mon::model::{labels, NANOS_PER_SEC};
use shasta_mon::shasta::SwitchState;

const MINUTE: i64 = 60 * NANOS_PER_SEC;

/// Figure 7's exact event line.
const FIG7_LINE: &str = "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN";

#[test]
fn fig7_event_line_format_matches() {
    use shasta_mon::model::Severity;
    use shasta_mon::shasta::fabric::SwitchStateChange;
    let change = SwitchStateChange {
        xname: "x1002c1r7b0".parse().unwrap(),
        from: SwitchState::Online,
        to: SwitchState::Unknown,
        severity: Severity::Critical,
    };
    assert_eq!(change.to_event_line(), FIG7_LINE);
}

#[test]
fn fig7_pattern_extraction() {
    // The paper's pattern:
    // | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>"
    let q = parse_log_query(
        r#"{app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>""#,
    )
    .unwrap();
    let pipeline = Pipeline::new(q.stages);
    let stream = labels!("app" => "fabric_manager_monitor", "cluster" => "perlmutter");
    let e = pipeline.process(FIG7_LINE, &stream).unwrap();
    assert_eq!(e.labels.get("severity"), Some("critical"));
    assert_eq!(e.labels.get("problem"), Some("fm_switch_offline"));
    assert_eq!(e.labels.get("xname"), Some("x1002c1r7b0"));
    assert_eq!(e.labels.get("state"), Some("UNKNOWN"));
    // The original two stream labels survive (Fig 7 shows app + cluster).
    assert_eq!(e.labels.get("app"), Some("fabric_manager_monitor"));
    assert_eq!(e.labels.get("cluster"), Some("perlmutter"));
}

#[test]
fn fig8_rule_fires_through_monitoring_stack() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let switch = stack.machine.topology().switches()[5];
    stack.take_switch_offline(switch, SwitchState::Unknown);
    // Monitor polls on the next step, Ruler holds 1 minute, group_wait
    // 10 s — three minutes covers it.
    let mut firing = false;
    for _ in 0..4 {
        let notifs = stack.step(MINUTE, 0, 0);
        firing |=
            notifs.iter().any(|n| n.alerts.iter().any(|a| a.name() == "PerlmutterSwitchOffline"));
    }
    assert!(firing, "switch-offline rule must fire");
}

#[test]
fn fig8_rule_shape_matches_paper() {
    let rule = AlertingRule::paper_switch_rule();
    // The Figure 8 rule searches the offline-switch events and thresholds
    // on > 0 with a one-minute hold.
    assert!(rule.expr.contains(r#"{app="fabric_manager_monitor"}"#));
    assert!(rule.expr.contains(r#"|= "fm_switch_offline""#));
    assert!(rule.expr.contains("count_over_time"));
    assert!(rule.expr.ends_with("> 0"));
    assert_eq!(rule.for_ns, MINUTE);
}

#[test]
fn fig9_slack_notification_content() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let switch = stack.machine.topology().switches()[0];
    stack.take_switch_offline(switch, SwitchState::Unknown);
    for _ in 0..5 {
        stack.step(MINUTE, 0, 0);
    }
    let msgs = stack.slack.messages();
    let msg = msgs
        .iter()
        .find(|m| m.text.contains("PerlmutterSwitchOffline"))
        .expect("switch notification must reach Slack");
    assert!(msg.text.contains("[FIRING]"));
    assert!(msg.text.contains(&switch.to_string()));
    assert!(msg.text.contains("state:* UNKNOWN") || msg.text.contains("UNKNOWN"));
    assert!(msg.text.contains("fm_switch_offline"));
}

#[test]
fn recovered_switch_resolves() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    let switch = stack.machine.topology().switches()[3];
    stack.take_switch_offline(switch, SwitchState::Offline);
    for _ in 0..4 {
        stack.step(MINUTE, 0, 0);
    }
    stack.take_switch_offline(switch, SwitchState::Online);
    for _ in 0..8 {
        stack.step(MINUTE, 0, 0);
    }
    assert!(
        stack.slack.messages().iter().any(|m| m.text.contains("[RESOLVED]")),
        "recovery must produce a resolved notification"
    );
}

//! Experiment C7 — noise reduction: "the reduction in noise caused by
//! multiple alerts from the same events" via Alertmanager grouping and
//! ServiceNow deduplication.

use shasta_mon::alertmanager::{Alert, AlertStatus, Alertmanager, Route};
use shasta_mon::logql::Matcher;
use shasta_mon::model::{labels, NANOS_PER_SEC};
use shasta_mon::servicenow::{IncidentRule, ServiceNow, SnEvent};

const SEC: i64 = NANOS_PER_SEC;

fn am() -> Alertmanager {
    let mut route = Route::default_route("slack");
    route.group_by = vec!["alertname".into()];
    route.group_wait_ns = 10 * SEC;
    route.group_interval_ns = 60 * SEC;
    route.repeat_interval_ns = 3_600 * SEC;
    Alertmanager::new(route)
}

#[test]
fn alert_storm_compresses_into_grouped_notifications() {
    let mut am = am();
    // A fabric event takes out 32 switches; each raises its own alert.
    for i in 0..32 {
        am.receive(
            Alert {
                labels: labels!(
                    "alertname" => "PerlmutterSwitchOffline",
                    "xname" => format!("x{:04}c0r0b0", 1000 + i)
                ),
                annotations: vec![],
                status: AlertStatus::Firing,
                starts_at: SEC,
            },
            SEC,
        );
    }
    let notifs = am.tick(20 * SEC);
    assert_eq!(notifs.len(), 1, "one group -> one notification");
    assert_eq!(notifs[0].alerts.len(), 32);
    let (received, notified, _) = am.stats();
    assert_eq!(received, 32);
    assert_eq!(notified, 1);
    assert!(received / notified >= 32);
}

#[test]
fn inhibition_cuts_cascade_noise() {
    let mut am = am();
    am.add_inhibit_rule(shasta_mon::alertmanager::InhibitRule {
        source_matchers: vec![Matcher::eq("alertname", "SwitchOffline")],
        target_matchers: vec![Matcher::eq("alertname", "NodeDown")],
        equal: vec!["chassis".into()],
    });
    am.receive(
        Alert {
            labels: labels!("alertname" => "SwitchOffline", "chassis" => "x1002c1"),
            annotations: vec![],
            status: AlertStatus::Firing,
            starts_at: 0,
        },
        0,
    );
    // The 8 downstream node alerts the paper's topology implies.
    for n in 0..8 {
        am.receive(
            Alert {
                labels: labels!(
                    "alertname" => "NodeDown",
                    "chassis" => "x1002c1",
                    "node" => format!("n{n}")
                ),
                annotations: vec![],
                status: AlertStatus::Firing,
                starts_at: 0,
            },
            0,
        );
    }
    let notifs = am.tick(20 * SEC);
    // Only the root cause notifies; the node cascade is inhibited.
    assert_eq!(notifs.len(), 1);
    assert_eq!(notifs[0].alerts[0].name(), "SwitchOffline");
    let (_, _, suppressed) = am.stats();
    assert_eq!(suppressed, 8);
}

#[test]
fn servicenow_dedup_many_events_one_incident() {
    let sn = ServiceNow::new();
    sn.add_incident_rule(IncidentRule {
        name: "crit".into(),
        max_severity: 2,
        node_contains: None,
        resource: None,
        assignment_group: "ops".into(),
    });
    // The same leak reported 50 times (flapping sensor / repeated rule
    // evaluation).
    for i in 0..50 {
        sn.process_event(
            SnEvent {
                source: "alertmanager".into(),
                node: "x1203c1b0".into(),
                metric_type: "leak".into(),
                resource: "chassis".into(),
                severity: 1,
                message_key: "PerlmutterCabinetLeak:x1203c1b0".into(),
                description: "Cabinet leak detected".into(),
            },
            i * SEC,
        );
    }
    assert_eq!(sn.events_received(), 50);
    assert_eq!(sn.alerts().len(), 1, "one message_key -> one SN alert");
    assert_eq!(sn.alerts()[0].event_count, 50);
    assert_eq!(sn.incidents().len(), 1, "one alert -> one incident");
}

#[test]
fn noise_reduction_factor_exceeds_ten() {
    // End-to-end factor: 50 events -> 1 notification path.
    let mut am = am();
    let sn = ServiceNow::new();
    sn.add_incident_rule(IncidentRule {
        name: "crit".into(),
        max_severity: 2,
        node_contains: None,
        resource: None,
        assignment_group: "ops".into(),
    });
    let mut events_in = 0u64;
    for round in 0..5 {
        for loc in 0..10 {
            events_in += 1;
            am.receive(
                Alert {
                    labels: labels!(
                        "alertname" => "CabinetLeak",
                        "severity" => "critical",
                        "Context" => format!("x{loc:04}c1b0")
                    ),
                    annotations: vec![],
                    status: AlertStatus::Firing,
                    starts_at: round * SEC,
                },
                round * SEC,
            );
        }
    }
    let notifs = am.tick(30 * SEC);
    let mut sn_events = 0;
    for n in &notifs {
        sn_events += sn.receive_notification(n, 30 * SEC).len();
    }
    let incidents = sn.incidents().len() as u64;
    assert!(sn_events > 0);
    assert!(incidents <= 10);
    let factor = events_in as f64 / notifs.len().max(1) as f64;
    assert!(factor >= 10.0, "noise reduction factor {factor}");
}

//! Failure injection: the pipeline must degrade loudly-but-safely when
//! fed garbage, backlogged, or queried adversarially.

use shasta_mon::core::{MonitoringStack, StackConfig};
use shasta_mon::loki::{IngestError, Limits, LokiCluster};
use shasta_mon::model::{labels, SimClock, NANOS_PER_SEC};

const MINUTE: i64 = 60 * NANOS_PER_SEC;

#[test]
fn malformed_redfish_payloads_are_dropped_not_fatal() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    // Push garbage straight onto the resource-event topic.
    for garbage in ["not json", "{}", r#"{"metrics":{"messages":[{"Context":"bad!"}]}}"#] {
        stack
            .collector
            .publish_log(shasta_mon::redfish::topics::RESOURCE_EVENTS, "x0", garbage)
            .unwrap();
    }
    stack.step(MINUTE, 5, 5);
    // The pipeline survived; no redfish events were stored.
    let events =
        stack.pane.logs(r#"{data_type="redfish_event"}"#, 0, stack.clock.now(), 10).unwrap();
    assert!(events.is_empty());
    // And the healthy traffic still flowed.
    assert!(!stack
        .pane
        .logs(r#"{data_type="syslog"}"#, 0, stack.clock.now(), 10)
        .unwrap()
        .is_empty());
}

#[test]
fn out_of_order_entries_are_rejected_per_stream() {
    let loki = LokiCluster::new(2, Limits::default(), SimClock::starting_at(0));
    let l = labels!("app" => "skewed");
    loki.push(l.clone(), 1_000, "newer").unwrap();
    let err = loki.push(l.clone(), 500, "older").unwrap_err();
    assert!(matches!(err, IngestError::Append(_)));
    assert_eq!(loki.stats().rejected, 1);
    // Forward progress still fine.
    loki.push(l, 2_000, "newest").unwrap();
    assert_eq!(loki.stats().entries, 2);
}

#[test]
fn oversized_lines_rejected() {
    let limits = Limits { max_line_size: 128, ..Default::default() };
    let loki = LokiCluster::new(1, limits, SimClock::starting_at(0));
    let err = loki.push(labels!("a" => "1"), 1, "x".repeat(1_000)).unwrap_err();
    assert!(matches!(err, IngestError::Append(_)));
}

#[test]
fn label_explosion_capped_per_stream() {
    let limits = Limits { max_label_names_per_series: 5, ..Default::default() };
    let loki = LokiCluster::new(1, limits, SimClock::starting_at(0));
    let mut big = labels!("a" => "1");
    for i in 0..10 {
        big.insert(format!("l{i}"), "v");
    }
    assert!(matches!(loki.push(big, 1, "x"), Err(IngestError::TooManyLabels(11))));
}

#[test]
fn regex_bomb_in_query_fails_safe() {
    let loki = LokiCluster::new(1, Limits::default(), SimClock::starting_at(0));
    let line = format!("{}b", "a".repeat(60));
    loki.push(labels!("app" => "x"), 1, line).unwrap();
    // Pathological backtracking pattern: the engine's step budget turns it
    // into a non-match instead of a hang.
    let out = loki.query_logs(r#"{app="x"} |~ "(a+)+$""#, 0, 10, 10).unwrap();
    assert!(out.is_empty());
}

#[test]
fn scrape_failure_surfaces_as_up_zero_alert() {
    use shasta_mon::model::LabelSet;
    use shasta_mon::tsdb::{MetricRule, Tsdb, TsdbConfig, VmAgent, VmAlert, VmAlertState};
    let db = Tsdb::new(TsdbConfig::default());
    let mut agent = VmAgent::new(db.clone());
    agent.add_target("node-exporter", "dead-host", Box::new(|_| Err("connection refused".into())));
    let mut vmalert = VmAlert::new(db);
    vmalert
        .add_rule(MetricRule {
            name: "TargetDown".into(),
            expr: "max by (instance) (up) < 1".into(),
            for_ns: 0,
            labels: LabelSet::from_pairs([("severity", "critical")]),
            annotations: vec![("summary".into(), "{{.instance}} unreachable".into())],
        })
        .unwrap();
    agent.scrape_once(MINUTE);
    let notifs = vmalert.evaluate(MINUTE);
    assert_eq!(notifs.len(), 1);
    assert_eq!(notifs[0].state, VmAlertState::Firing);
    assert_eq!(notifs[0].labels.get("instance"), Some("dead-host"));
}

#[test]
fn slow_tail_subscriber_drops_but_pipeline_continues() {
    use shasta_mon::bus::{Broker, TopicConfig};
    let broker = Broker::new(SimClock::new());
    broker.create_topic("t", TopicConfig { partitions: 1, ..Default::default() }).unwrap();
    let rx = broker.tail("t", 4).unwrap();
    for i in 0..100 {
        broker.produce("t", None, format!("{i}")).unwrap();
    }
    // The subscriber kept the first 4; 96 were dropped for it — but the
    // topic retains everything for offset-based consumers.
    assert_eq!(rx.try_iter().count(), 4);
    assert_eq!(broker.stats("t").unwrap().tail_drops, 96);
    assert_eq!(broker.fetch("t", 0, 0, usize::MAX).unwrap().len(), 100);
}

#[test]
fn query_against_empty_store_is_clean() {
    let loki = LokiCluster::new(4, Limits::default(), SimClock::starting_at(0));
    assert!(loki.query_logs(r#"{any="thing"}"#, 0, i64::MAX / 2, 10).unwrap().is_empty());
    assert!(loki.query_instant(r#"sum(count_over_time({a="b"}[1h]))"#, MINUTE).unwrap().is_empty());
}

#[test]
fn alert_storm_does_not_wedge_the_stack() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.step(MINUTE, 0, 0);
    // Break everything at once.
    let topo = stack.machine.topology().clone();
    for sw in topo.switches() {
        stack.take_switch_offline(*sw, shasta_mon::shasta::SwitchState::Offline);
    }
    for ch in topo.chassis().iter().take(4) {
        stack.inject_leak(*ch, 'A', shasta_mon::shasta::LeakZone::Front);
    }
    for _ in 0..8 {
        stack.step(MINUTE, 20, 10);
    }
    // The pipeline kept flowing and the storm was grouped, not dropped.
    let (received, notified, _) = stack.alertmanager_stats();
    assert!(received > 0);
    assert!(notified > 0);
    assert!(notified < received, "grouping must compress the storm");
    let (_, errors, _) = stack.bridge_stats();
    assert_eq!(errors, 0);
}

//! Chaos acceptance: a scripted failure schedule — ingester crash at
//! t+2m (recovery at t+6m), a bus brownout over t+4m..t+5m, and a Slack
//! webhook failing 50% of sends — driven through the full
//! `MonitoringStack`, asserting zero log loss, zero alert loss, bounded
//! memory, and a byte-identical resilience report across same-seed runs.

use shasta_mon::core::{ChaosEngine, ChaosFault, MonitoringStack, StackConfig};
use shasta_mon::model::NANOS_PER_SEC;
use shasta_mon::shasta::LeakZone;

const MINUTE: i64 = 60 * NANOS_PER_SEC;
const SYSLOG_PER_STEP: usize = 5;
const CONTAINER_PER_STEP: usize = 3;
const STEPS: usize = 20;

fn chaos_schedule(seed: u64) -> ChaosEngine {
    ChaosEngine::new(seed)
        .inject(ChaosFault::IngesterCrash { at: 2 * MINUTE, shard: 0, recover_at: 6 * MINUTE })
        .inject(ChaosFault::BusBrownout { from: 4 * MINUTE, until: 5 * MINUTE })
        .inject(ChaosFault::SubscriptionDrop { at: 3 * MINUTE })
        .inject(ChaosFault::FlakyReceiver {
            receiver: "slack".into(),
            from: 0,
            until: 30 * MINUTE,
            fail_permille: 500,
        })
}

struct RunOutcome {
    report: String,
    slack_expected: usize,
    slack_got: usize,
    syslog_count: usize,
    container_count: usize,
    pre_crash_syslog: usize,
    leak_timeline: String,
}

fn run_scenario(seed: u64) -> RunOutcome {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.install_chaos(chaos_schedule(seed));

    let mut slack_expected = 0;
    let mut leak_context = String::new();
    for i in 1..=STEPS {
        // The leak fires after the shard has recovered; its 60m LogQL
        // window keeps it visible regardless.
        if i == 7 {
            let chassis = stack.machine.topology().chassis()[3];
            let event = stack.inject_leak(chassis, 'A', LeakZone::Front);
            leak_context = event.context.to_string();
        }
        let notifications = stack.step(MINUTE, SYSLOG_PER_STEP, CONTAINER_PER_STEP);
        slack_expected += notifications.iter().filter(|n| n.receiver == "slack").count();
    }

    let end = stack.clock.now() + 1;
    let count = |selector: &str, from: i64, to: i64| {
        stack.pane.logs(selector, from, to, usize::MAX).unwrap().len()
    };
    let leak_trace = stack.traces().lookup(&leak_context).expect("leak event must be traced");
    RunOutcome {
        report: stack.resilience_report().render(),
        slack_expected,
        slack_got: stack.slack.messages().len(),
        syslog_count: count(r#"{data_type="syslog"}"#, 0, end),
        container_count: count(r#"{data_type="container_log"}"#, 0, end),
        // Lines ingested before the t+2m crash, queried after recovery.
        pre_crash_syslog: count(r#"{data_type="syslog"}"#, 0, MINUTE + 1),
        leak_timeline: stack.traces().render_timeline(leak_trace),
    }
}

#[test]
fn scripted_chaos_loses_no_logs_and_no_alerts() {
    let out = run_scenario(42);

    // Zero log loss: every generated line is queryable at the end, and
    // the pre-crash lines specifically survived the crash via WAL replay.
    assert_eq!(out.syslog_count, STEPS * SYSLOG_PER_STEP, "syslog lines lost");
    assert_eq!(out.container_count, STEPS * CONTAINER_PER_STEP, "container lines lost");
    assert_eq!(out.pre_crash_syslog, SYSLOG_PER_STEP, "pre-crash lines lost in the crash");

    // Zero alert loss: every notification the alertmanager dispatched to
    // Slack eventually landed, despite the 50% flaky webhook.
    assert!(out.slack_expected > 0, "scenario must raise alerts");
    assert_eq!(out.slack_got, out.slack_expected, "slack deliveries lost");
}

#[test]
fn chaos_machinery_actually_engaged() {
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.install_chaos(chaos_schedule(42));
    for i in 1..=STEPS {
        if i == 7 {
            let chassis = stack.machine.topology().chassis()[3];
            stack.inject_leak(chassis, 'A', LeakZone::Front);
        }
        stack.step(MINUTE, SYSLOG_PER_STEP, CONTAINER_PER_STEP);
    }

    // The crash really happened and WAL replay really ran.
    let loki = stack.omni.loki().resilience();
    assert_eq!(loki.crashes, 1);
    assert!(loki.replayed_records > 0, "recovery must replay the WAL");
    assert_eq!((loki.shards_up, loki.shards_total), (8, 8));

    // The brownout really bounced traffic and the bridges retried.
    let lb = stack.resilience_report().log_bridge;
    assert!(lb.fetch_retries > 0, "brownout must defer bridge fetches");
    assert!(lb.resubscribes > 0, "credential drop must force a re-subscribe");
    let brownouts: u64 = stack
        .broker()
        .topics()
        .iter()
        .map(|t| stack.broker().stats(t).unwrap().unavailable_windows)
        .sum();
    assert!(brownouts > 0, "brownout must register on bus stats");

    // The flaky webhook really failed sends, and delivery retried them
    // to completion: nothing pending, nothing dead-lettered.
    let d = stack.delivery_stats();
    assert!(d.retried > 0, "50% flaky slack must force retries");
    assert_eq!(d.delivered, d.enqueued, "all notifications must land");
    assert_eq!(d.permanently_failed, 0);

    // Bounded memory: every queue drained.
    assert_eq!(d.queue_depth, 0);
    assert_eq!(stack.resilience_report().log_bridge.in_flight, 0);
    assert!(stack.dead_letter_notifications().is_empty());
}

#[test]
fn same_seed_renders_byte_identical_resilience_reports() {
    let a = run_scenario(42);
    let b = run_scenario(42);
    assert_eq!(a.report, b.report, "same chaos seed must replay identically");
    assert_eq!(a.slack_got, b.slack_got);
    assert!(!a.report.is_empty());
    // The report carries the chaos line (an engine was installed).
    assert!(a.report.contains("chaos:"), "{}", a.report);
    assert!(a.report.contains("crashes 1"), "{}", a.report);
    // The traced leak renders the same byte-identical timeline too.
    assert_eq!(a.leak_timeline, b.leak_timeline, "trace timelines must replay identically");
}

#[test]
fn fault_window_visible_in_self_metrics() {
    // The monitor monitors itself: the t+4m..t+5m bus brownout shows up
    // as a rectangular pulse on `omni_bus_unavailable` — a gauge fed by
    // the self-telemetry registry, scraped by vmagent into the TSDB, and
    // queried back through the same pane operators use.
    let mut stack = MonitoringStack::new(StackConfig::default());
    stack.install_chaos(chaos_schedule(42));
    for i in 1..=STEPS {
        if i == 7 {
            let chassis = stack.machine.topology().chassis()[3];
            stack.inject_leak(chassis, 'A', LeakZone::Front);
        }
        stack.step(MINUTE, SYSLOG_PER_STEP, CONTAINER_PER_STEP);
    }

    let matrix = stack
        .pane
        .metric_range("omni_bus_unavailable", MINUTE, (STEPS as i64) * MINUTE, MINUTE)
        .unwrap();
    assert_eq!(matrix.len(), 1, "one self-scrape series expected");
    let samples = &matrix[0].1;
    assert_eq!(samples.len(), STEPS, "one sample per scrape tick");
    for s in samples {
        let inside = s.ts >= 4 * MINUTE && s.ts < 5 * MINUTE;
        let want = if inside { 1.0 } else { 0.0 };
        assert_eq!(s.value, want, "unavailability gauge wrong at t+{}m", s.ts / MINUTE);
    }

    // The crash window is visible the same way: shards down from the
    // t+2m crash until the t+6m recovery.
    let down = stack
        .pane
        .metric_range("omni_loki_shards_down", MINUTE, (STEPS as i64) * MINUTE, MINUTE)
        .unwrap();
    for s in &down[0].1 {
        let inside = s.ts >= 2 * MINUTE && s.ts < 6 * MINUTE;
        let want = if inside { 1.0 } else { 0.0 };
        assert_eq!(s.value, want, "shards-down gauge wrong at t+{}m", s.ts / MINUTE);
    }

    // And the delivery retries the flaky Slack webhook forced are
    // counted by the registry, not just the ad-hoc stats struct.
    let retried =
        stack.pane.metric_instant("omni_delivery_retried_total", stack.clock.now()).unwrap();
    assert!(retried[0].1 > 0.0, "flaky webhook retries must surface in self-metrics");
}

#[test]
fn traced_leak_covers_every_stage_despite_chaos() {
    let out = run_scenario(42);
    let t = &out.leak_timeline;
    for stage in [
        "collect",
        "kafka",
        "loki_ingest",
        "alert_rule",
        "alertmanager",
        "deliver_slack",
        "deliver_servicenow",
        "servicenow_incident",
    ] {
        assert!(t.contains(stage), "stage {stage} missing from timeline:\n{t}");
    }
    assert!(t.contains("event -> incident latency:"), "{t}");
}

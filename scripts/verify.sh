#!/usr/bin/env bash
# One-shot verification gate: formatting, release build, full workspace
# tests, workspace-wide clippy (warnings denied), the omni-lint static
# analysis gate, and a warning-free doc build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --workspace -D warnings =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== omni-lint (static rule/query/source validation) =="
# omni-lint exits non-zero when it has findings; capture the report
# either way and let the JSON decide so the findings still get printed.
lint_out="$(cargo run -q -p omni-lint -- --json || true)"
python3 - "$lint_out" <<'PY'
import json, sys
report = json.loads(sys.argv[1])
assert report["version"] == 1, f"unexpected report version: {report['version']}"
if report["findings"]:
    for f in report["findings"]:
        print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
    sys.exit(1)
print("omni-lint: no findings")
PY

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "== tenant chaos drill (fixed seed, isolation invariants) =="
# The drill asserts its own invariants and exits non-zero on any
# isolation breach; require the closing line so a silent truncation of
# the drill also fails the gate.
cargo run -q --release --example tenant_chaos_drill \
    | grep "tenant chaos drill: all isolation invariants hold"

echo "== introspection drill (slow-query log, span trees, exemplars, SLO burn) =="
# The drill asserts the whole deep-introspection surface: the slow query
# self-ingests with a trace id, the trace renders as a span tree with
# queue-wait and per-split children, the exemplar links the same trace,
# the forced regression fires SloFastBurn through vmalert→Alertmanager,
# and tail sampling bounds retention. Require the closing line so a
# silent truncation also fails the gate.
drill_out="$(cargo run -q --release --example introspection_drill)"
echo "$drill_out" | grep "introspection drill: all assertions hold"
echo "$drill_out" | grep -q '"trace_id"' || { echo "slow-query log line missing"; exit 1; }

echo "== introspection catalog families registered =="
# The lint catalog must know every introspection family the stack emits;
# a missing entry would make dashboards/rules over them fail the boot lint.
python3 - <<'PY'
import subprocess
names = subprocess.run(
    ["cargo", "run", "-q", "-p", "omni-lint", "--", "--catalog"],
    capture_output=True, text=True, check=True,
).stdout
for family in ["omni_slo_burn_rate", "omni_query_latency_seconds_p99",
               "omni_query_slow_total", "omni_tenant_query_wait_seconds_bucket",
               "omni_trace_kept_total", "omni_trace_dropped_total"]:
    assert family in names, f"catalog missing {family}"
print("introspection families: all registered")
PY

echo "== compaction drill (--quick: 10 days, no report rewrite) =="
# The drill asserts tier equivalence (byte-identical archaeology results
# before/after compaction), replayed-chunk dedup with cache invalidation,
# reduced storage amplification, and retried transient cold-tier GETs.
cargo run -q --release --example compaction_drill -- --quick \
    | grep "compaction drill: all assertions hold"

echo "== compactor catalog families registered =="
python3 - <<'PY'
import subprocess
names = subprocess.run(
    ["cargo", "run", "-q", "-p", "omni-lint", "--", "--catalog"],
    capture_output=True, text=True, check=True,
).stdout
for family in ["omni_compactor_runs_total", "omni_compactor_chunks_merged_total",
               "omni_compactor_duplicates_dropped_total", "omni_compactor_cold_objects",
               "omni_compactor_cold_transient_failures_total", "omni_query_cold_chunks_total"]:
    assert family in names, f"catalog missing {family}"
print("compactor families: all registered")
PY

echo "== bench smoke (--quick: tiny workload, no report rewrite) =="
cargo bench -q -p omni-bench --bench c1_ingest_throughput -- --quick | grep "pr3 ingest"
cargo bench -q -p omni-bench --bench fig5_range_query -- --quick | grep "pr3 range_query"
cargo bench -q -p omni-bench --bench c7_frontend_cache -- --quick | grep "pr5 frontend_cache"

echo "== BENCH_PR3.json present and complete =="
test -f BENCH_PR3.json
for key in ingest range_query speedup per_record_msgs_per_sec batched_msgs_per_sec \
    blocks_total blocks_decoded; do
    grep -q "\"$key\"" BENCH_PR3.json || { echo "BENCH_PR3.json missing $key"; exit 1; }
done

echo "== BENCH_PR5.json present and complete =="
test -f BENCH_PR5.json
for key in frontend_cache cold_refresh_seconds warm_refresh_seconds speedup \
    cache_hits cache_misses split_equals_unsplit; do
    grep -q "\"$key\"" BENCH_PR5.json || { echo "BENCH_PR5.json missing $key"; exit 1; }
done

echo "== BENCH_PR8.json present and complete =="
test -f BENCH_PR8.json
for key in compaction_drill objects_merged duplicates_dropped \
    storage_amplification_before storage_amplification_after \
    tail_query_modeled_ms_before tail_query_modeled_ms_after \
    objects_touched_before objects_touched_after cold_transient_failures; do
    grep -q "\"$key\"" BENCH_PR8.json || { echo "BENCH_PR8.json missing $key"; exit 1; }
done

echo "verify: OK"

#!/usr/bin/env bash
# One-shot verification gate: release build, full workspace tests, and
# clippy (warnings denied) on the crates the resilience work touches.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy -D warnings (touched crates) =="
cargo clippy -q -p omni-model -p omni-bus -p omni-telemetry -p omni-loki \
    -p omni-alertmanager -p omni-core --all-targets -- -D warnings

echo "verify: OK"

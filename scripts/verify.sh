#!/usr/bin/env bash
# One-shot verification gate: formatting, release build, full workspace
# tests, clippy (warnings denied) on the crates the resilience and
# observability work touches, and a warning-free doc build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy -D warnings (touched crates) =="
cargo clippy -q -p omni-model -p omni-bus -p omni-telemetry -p omni-loki \
    -p omni-alertmanager -p omni-obs -p omni-exporters -p omni-core \
    --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "== bench smoke (--quick: tiny workload, no report rewrite) =="
cargo bench -q -p omni-bench --bench c1_ingest_throughput -- --quick | grep "pr3 ingest"
cargo bench -q -p omni-bench --bench fig5_range_query -- --quick | grep "pr3 range_query"

echo "== BENCH_PR3.json present and complete =="
test -f BENCH_PR3.json
for key in ingest range_query speedup per_record_msgs_per_sec batched_msgs_per_sec \
    blocks_total blocks_decoded; do
    grep -q "\"$key\"" BENCH_PR3.json || { echo "BENCH_PR3.json missing $key"; exit 1; }
done

echo "verify: OK"

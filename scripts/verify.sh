#!/usr/bin/env bash
# One-shot verification gate: formatting, release build, full workspace
# tests, clippy (warnings denied) on the crates the resilience and
# observability work touches, and a warning-free doc build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy -D warnings (touched crates) =="
cargo clippy -q -p omni-model -p omni-bus -p omni-telemetry -p omni-loki \
    -p omni-alertmanager -p omni-obs -p omni-exporters -p omni-core \
    --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "verify: OK"
